//! The generic scatter/gather executor.
//!
//! [`execute_streaming`] is the engine's heart: it fans a job list
//! across scoped worker threads pulling from a [`StealQueues`] set,
//! funnels `(index, result)` pairs back over an mpsc channel, and passes
//! them through a reorder buffer so the caller's sink observes results
//! in **strictly increasing job-index order** no matter how the threads
//! interleave. That reorder buffer is what makes every consumer of the
//! engine byte-deterministic across thread counts: downstream code never
//! sees scheduling.
//!
//! The executor is generic over the job and result types — the sweep
//! layers ([`crate::grid`], [`crate::job`]) specialize it to
//! `(RunConfig, specs, seed) → RunReport`, but experiments with
//! non-`run_batched` workloads (learning runners, open-market baselines)
//! drive it directly with closures.

use crate::progress::{CancelToken, ProgressFn};
use crate::queue::StealQueues;
use std::collections::BTreeMap;
use std::sync::mpsc;

/// Outcome of an executor run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStatus {
    /// Jobs whose results were produced and delivered.
    pub completed: usize,
    /// Jobs submitted.
    pub total: usize,
    /// True when the sweep was cancelled before finishing.
    pub cancelled: bool,
}

impl ExecStatus {
    /// Did every job complete?
    pub fn is_complete(&self) -> bool {
        self.completed == self.total
    }
}

/// Run `f` over `items` on `threads` workers, delivering each
/// `(index, result)` to `sink` in strictly increasing index order.
///
/// `f` is invoked as `f(worker, index, item)` — the worker id exists for
/// scheduling diagnostics and tests; results must not depend on it.
/// While the sweep is healthy the sink sees the contiguous prefix
/// `0, 1, 2, …` as soon as each index's result lands; after a
/// cancellation, results beyond a skipped job are flushed at the end,
/// still in increasing order but with gaps. `progress` (if given) is
/// called as `(delivered, total)` after each sink call, on the
/// coordinating thread — it may flip the [`CancelToken`] to stop the
/// sweep mid-flight.
///
/// Workers exit when every queue is observed empty or cancellation is
/// requested; in-flight jobs always run to completion.
pub fn execute_streaming<T, R, F>(
    items: Vec<T>,
    threads: usize,
    cancel: &CancelToken,
    progress: Option<ProgressFn<'_>>,
    f: F,
    sink: &mut dyn FnMut(usize, R),
) -> ExecStatus
where
    T: Send,
    R: Send,
    F: Fn(usize, usize, T) -> R + Sync,
{
    let total = items.len();
    let workers = threads.max(1).min(total.max(1));
    let indexed: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queues = StealQueues::deal(indexed, workers);
    // Bounded funnel: workers block once `workers` results sit unread in
    // the channel, so a cancellation request stops the fleet within ~2
    // jobs per worker and workers can't race arbitrarily far ahead of
    // the coordinator. Note this bounds the *channel*, not total
    // in-flight memory: the reorder buffer below must hold every
    // completed-but-undeliverable result, so its size is bounded by
    // job-duration skew (worst case, one pathologically slow low-index
    // job lets it grow to O(remaining jobs)).
    let (tx, rx) = mpsc::sync_channel::<(usize, R)>(workers);
    let f = &f;
    let queues = &queues;

    let mut delivered = 0usize;
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || {
                while !cancel.is_cancelled() {
                    let Some(((index, item), _stolen)) = queues.pop(worker) else { break };
                    // A send only fails if the receiver hung up, which the
                    // coordinator never does before the channel drains.
                    let _ = tx.send((index, f(worker, index, item)));
                }
            });
        }
        // The workers hold the only remaining senders: `recv` errors out
        // exactly when all of them have exited.
        drop(tx);

        delivered = drain_reorder(rx, progress, total, sink);
    });

    ExecStatus { completed: delivered, total, cancelled: cancel.is_cancelled() }
}

/// The coordinator's receive loop, shared by the scoped executor above
/// and the persistent-pool executor in [`crate::persistent`]: drain the
/// result funnel through a reorder buffer so `sink` observes strictly
/// increasing job indices, and return how many results were delivered.
///
/// The reorder buffer parks out-of-order arrivals and releases the
/// contiguous prefix. The coordinator must keep receiving while it waits
/// for `next` (the missing result arrives over the same channel), so
/// this map — unlike the bounded funnel feeding it — is unbounded; its
/// size is bounded by job-duration skew, not sweep size.
pub(crate) fn drain_reorder<R>(
    rx: mpsc::Receiver<(usize, R)>,
    mut progress: Option<ProgressFn<'_>>,
    total: usize,
    sink: &mut dyn FnMut(usize, R),
) -> usize {
    let mut delivered = 0usize;
    let mut parked: BTreeMap<usize, R> = BTreeMap::new();
    let mut next = 0usize;
    while let Ok((index, result)) = rx.recv() {
        parked.insert(index, result);
        while let Some(result) = parked.remove(&next) {
            sink(next, result);
            next += 1;
            delivered += 1;
            if let Some(p) = progress.as_mut() {
                p(delivered, total);
            }
        }
    }
    // Cancellation can leave holes; flush what completed beyond them,
    // still in increasing index order.
    for (index, result) in parked {
        sink(index, result);
        delivered += 1;
        if let Some(p) = progress.as_mut() {
            p(delivered, total);
        }
    }
    delivered
}

/// Run `f` over `items` and collect results in index order.
///
/// Cancelled (skipped) jobs yield `None`; a run that was never cancelled
/// returns all `Some`. See [`execute_streaming`] for scheduling
/// semantics.
pub fn execute<T, R, F>(
    items: Vec<T>,
    threads: usize,
    cancel: &CancelToken,
    f: F,
) -> (Vec<Option<R>>, ExecStatus)
where
    T: Send,
    R: Send,
    F: Fn(usize, usize, T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let status = execute_streaming(items, threads, cancel, None, f, &mut |i, r| out[i] = Some(r));
    (out, status)
}

/// Convenience: run `f` over `items` with no cancellation and unwrap the
/// results (all jobs are guaranteed to complete).
pub fn map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, usize, T) -> R + Sync,
{
    let (out, status) = execute(items, threads, &CancelToken::new(), f);
    debug_assert!(status.is_complete());
    // clamshell-lint: allow(D006) -- a fresh CancelToken is never cancelled, so every slot is Some
    out.into_iter().map(|r| r.expect("uncancelled job must complete")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    #[test]
    fn results_arrive_in_index_order() {
        // Reverse the natural completion order: early indices sleep
        // longest, so without the reorder buffer the sink would see
        // descending indices first.
        let items: Vec<u64> = (0..12).map(|i| (12 - i) * 3).collect();
        let mut seen = Vec::new();
        let status = execute_streaming(
            items,
            4,
            &CancelToken::new(),
            None,
            |_, idx, ms| {
                std::thread::sleep(Duration::from_millis(ms));
                idx * 10
            },
            &mut |i, r| seen.push((i, r)),
        );
        assert!(status.is_complete());
        assert_eq!(seen, (0..12).map(|i| (i, i * 10)).collect::<Vec<_>>());
    }

    #[test]
    fn one_slow_job_is_absorbed_by_stealing() {
        // Job 0 is pathologically slow. Its home worker (worker 0) is
        // pinned on it, so every other job — including the rest of
        // worker 0's round-robin share — must be executed by the other
        // workers via stealing.
        let slow = 0usize;
        let n = 16usize;
        let who: Mutex<Vec<usize>> = Mutex::new(vec![usize::MAX; n]);
        let (out, status) =
            execute((0..n).collect::<Vec<_>>(), 4, &CancelToken::new(), |worker, idx, job| {
                if job == slow {
                    std::thread::sleep(Duration::from_millis(200));
                }
                who.lock().unwrap()[idx] = worker;
                job * 2
            });
        assert!(status.is_complete());
        assert_eq!(
            out.iter().map(|r| r.unwrap()).collect::<Vec<_>>(),
            (0..n).map(|j| j * 2).collect::<Vec<_>>()
        );
        let who = who.lock().unwrap();
        let slow_worker = who[slow];
        // Without stealing, the slow job's worker would also run the
        // rest of its round-robin share (4 of 16 jobs). With stealing,
        // peers drain that share while the sleep holds it.
        let by_slow_worker = who.iter().filter(|&&w| w == slow_worker).count();
        assert!(
            by_slow_worker < 4,
            "peers should steal the slow worker's share, ran {by_slow_worker}"
        );
    }

    #[test]
    fn cancellation_skips_pending_jobs() {
        let started = AtomicUsize::new(0);
        let cancel = CancelToken::new();
        let n = 32usize;
        // Single worker, cancel from the progress hook after 2
        // deliveries. The bounded funnel means the worker can only be a
        // couple of jobs ahead of the deliveries, so most of the queue
        // must be skipped.
        let mut progress_calls = 0usize;
        let cancel_ref = &cancel;
        let mut sink_count = 0usize;
        let status = execute_streaming(
            (0..n).collect::<Vec<_>>(),
            1,
            &cancel,
            Some(&mut |done, _total| {
                progress_calls += 1;
                if done == 2 {
                    cancel_ref.cancel();
                }
            }),
            |_, _, j: usize| {
                started.fetch_add(1, Ordering::Relaxed);
                j
            },
            &mut |_, _| sink_count += 1,
        );
        assert!(status.cancelled);
        assert!(!status.is_complete());
        // Worst case the worker is one popped job plus one buffered
        // result past the cancel point.
        assert!(status.completed <= 8, "completed {}", status.completed);
        assert_eq!(status.completed, sink_count);
        assert_eq!(progress_calls, sink_count);
        // Every started job runs to completion and is delivered.
        assert_eq!(started.load(Ordering::Relaxed), status.completed);
    }

    #[test]
    fn cancellation_at_every_index_matches_sink_folds() {
        // Scoped-executor half of the cancellation-vs-aggregation
        // contract (see the persistent-pool twin): wherever the cancel
        // lands, `completed` equals the sink's fold count exactly.
        let n = 12usize;
        for threads in [1, 4] {
            for kill_after in 1..=n {
                let cancel = CancelToken::new();
                let cancel_ref = &cancel;
                let mut folds = 0usize;
                let status = execute_streaming(
                    (0..n).collect::<Vec<_>>(),
                    threads,
                    &cancel,
                    Some(&mut |done, _| {
                        if done == kill_after {
                            cancel_ref.cancel();
                        }
                    }),
                    |_, _, j: usize| j * 3,
                    &mut |i, r| {
                        assert_eq!(r, i * 3);
                        folds += 1;
                    },
                );
                assert_eq!(
                    status.completed, folds,
                    "t={threads} kill@{kill_after}: status/fold divergence"
                );
                assert!(status.cancelled);
                assert!(status.completed >= kill_after, "t={threads} kill@{kill_after}");
            }
        }
    }

    #[test]
    fn execute_marks_skipped_jobs_none() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let (out, status) = execute((0..8).collect::<Vec<_>>(), 2, &cancel, |_, _, j: usize| j);
        assert!(status.cancelled);
        assert_eq!(status.completed, 0);
        assert!(out.iter().all(|r| r.is_none()));
    }

    #[test]
    fn map_handles_more_threads_than_jobs() {
        let out = map(vec![1u32, 2, 3], 16, |_, _, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn map_handles_empty_job_list() {
        let out: Vec<u32> = map(Vec::<u32>::new(), 4, |_, _, x| x);
        assert!(out.is_empty());
    }
}
