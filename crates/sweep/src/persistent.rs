//! A persistent worker pool reused across sweeps.
//!
//! The scoped executor in [`crate::pool`] spawns fresh OS threads for
//! every sweep, which costs tens of microseconds per thread — noise for
//! a multi-second grid, but a measurable fixed tax when experiments fire
//! many small sweeps back to back (every `repro` experiment is a handful
//! of sub-second grids). [`WorkerPool`] keeps a set of long-lived
//! threads parked on a condition variable and hands them work per sweep,
//! so repeated [`Grid`](crate::Grid) runs amortize thread spawn to zero.
//!
//! ## Determinism
//!
//! The persistent path reuses the exact scheduling machinery of the
//! scoped path — the same [`StealQueues`] dealing, the same bounded
//! result funnel, and the same reorder buffer releasing the contiguous
//! job-index prefix — so its output is byte-identical to the scoped
//! executor at any thread count, and across consecutive sweeps on the
//! same pool (`reused_pool_is_byte_identical` below is the regression
//! test).
//!
//! ## When the scoped path still runs
//!
//! Persistent threads outlive any one call, so jobs routed here must be
//! `'static`; the generic borrowed-closure entry points
//! ([`crate::pool::execute_streaming`] and friends) keep using scoped
//! threads. [`execute_streaming_pooled`] also falls back to the scoped
//! executor when invoked *from inside* a pool worker (a nested sweep
//! would otherwise wait on pool threads that its own parent call
//! occupies — thread-starvation deadlock).

use crate::pool::{drain_reorder, ExecStatus};
use crate::progress::{CancelToken, ProgressFn};
use crate::queue::StealQueues;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of pool work: drain one sweep's steal queues.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// The injector queue plus the resize protocol's bookkeeping, under one
/// lock so a worker atomically chooses between exiting and picking up
/// work, and a resize sees exactly which workers are still serving.
#[derive(Default)]
struct Inject {
    /// Pending tasks, oldest first.
    tasks: VecDeque<Task>,
    /// Serials of the workers currently commissioned to serve.
    /// [`WorkerPool::resize`] edits this set *synchronously*: shrinking
    /// de-commissions the highest serials, and a de-commissioned worker
    /// exits the next time it looks for work. Serials are never reused,
    /// so a de-commissioned-but-still-parked thread can never be
    /// confused with a replacement.
    serving: std::collections::BTreeSet<u64>,
    /// Next serial to assign.
    next_serial: u64,
}

/// Shared state between the pool handle and its worker threads.
#[derive(Default)]
struct Shared {
    /// Pending tasks and retire requests.
    injector: Mutex<Inject>,
    /// Signaled when a task or retire is queued (or shutdown requested).
    available: Condvar,
    /// Set by [`WorkerPool`]'s `Drop`; workers exit instead of parking.
    shutdown: std::sync::atomic::AtomicBool,
}

thread_local! {
    /// True while the current thread is a pool worker executing a task —
    /// the nested-sweep fallback check.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A persistent, resizable set of worker threads for sweep execution.
///
/// Threads are spawned on demand and park on a condition variable
/// between sweeps; each sweep settles the pool to its own width
/// ([`WorkerPool::resize`]), so alternating wide and narrow sweeps
/// don't strand parked threads at the historical high-water mark. The
/// process-wide instance behind [`WorkerPool::global`] is what
/// [`Grid`](crate::Grid) runs on; creating private pools is mainly
/// useful in tests.
///
/// ```
/// use clamshell_sweep::{execute_streaming_pooled, CancelToken, WorkerPool};
///
/// let pool = WorkerPool::new();
/// let mut doubled = Vec::new();
/// execute_streaming_pooled(
///     &pool,
///     vec![1u64, 2, 3],
///     2,
///     &CancelToken::new(),
///     None,
///     |_worker, _index, x| x * 2,
///     &mut |_index, r| doubled.push(r),
/// );
/// assert_eq!(doubled, vec![2, 4, 6]); // index order, not completion order
/// assert_eq!(pool.threads(), 2); // parked, ready for the next sweep
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Worker join handles; also the current thread count.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.threads()).finish()
    }
}

impl WorkerPool {
    /// A pool with no threads yet; workers are added by
    /// [`WorkerPool::ensure_threads`] as sweeps request parallelism.
    pub fn new() -> Self {
        WorkerPool { shared: Arc::new(Shared::default()), handles: Mutex::new(Vec::new()) }
    }

    /// The process-wide pool shared by every [`Grid`](crate::Grid) sweep.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(WorkerPool::new)
    }

    /// Current number of serving workers: threads that will take the
    /// next task. Deterministic immediately after a [`WorkerPool::resize`]
    /// (de-commissioned threads leave the serving set synchronously, even
    /// if the OS thread is still winding down).
    pub fn threads(&self) -> usize {
        self.shared.injector.lock().unwrap().serving.len()
    }

    /// Join worker handles whose threads have already exited (completed
    /// retires), so the handle list stays bounded by the serving width.
    fn reap(handles: &mut Vec<std::thread::JoinHandle<()>>) {
        let mut live = Vec::with_capacity(handles.len());
        for handle in handles.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                live.push(handle);
            }
        }
        *handles = live;
    }

    /// Grow the pool (if needed) so at least `n` workers exist. Never
    /// shrinks — see [`WorkerPool::resize`] for the two-way version the
    /// sweep executor uses.
    pub fn ensure_threads(&self, n: usize) {
        self.resize(n.max(self.threads()));
    }

    /// Settle the pool at exactly `n` serving workers (floored at 1):
    /// spawn fresh workers when below, de-commission the newest serials
    /// when above. De-commissioned workers exit the next time they look
    /// for work, so repeated sweeps at alternating widths settle at the
    /// latest width instead of stranding parked threads at the
    /// historical high-water mark.
    ///
    /// A mid-sweep shrink is safe: de-commissioned workers exit
    /// *between* tasks (forwarding any pending wakeup), queued tasks are
    /// only taken by commissioned workers, and the floor of one worker
    /// keeps any submitted sweep draining.
    pub fn resize(&self, n: usize) {
        let n = n.max(1);
        let mut handles = self.handles.lock().unwrap();
        Self::reap(&mut handles);
        let mut inject = self.shared.injector.lock().unwrap();
        while inject.serving.len() > n {
            if let Some(&serial) = inject.serving.iter().next_back() {
                inject.serving.remove(&serial);
            }
        }
        while inject.serving.len() < n {
            let serial = inject.next_serial;
            inject.next_serial += 1;
            inject.serving.insert(serial);
            let shared = self.shared.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("clamshell-sweep-{serial}"))
                    .spawn(move || worker_loop(&shared, serial))
                    // clamshell-lint: allow(D006) -- failing to spawn a pool worker at startup is unrecoverable; fail fast
                    .expect("spawn sweep worker"),
            );
        }
        drop(inject);
        // Wake parked workers so de-commissioned serials observe it.
        self.shared.available.notify_all();
    }

    /// Queue one task for any parked worker.
    fn submit(&self, task: Task) {
        self.shared.injector.lock().unwrap().tasks.push_back(task);
        self.shared.available.notify_one();
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for WorkerPool {
    /// Shut the workers down and join them, so a dropped (non-global)
    /// pool releases its OS threads instead of leaking them parked on
    /// the condvar. Tasks still queued at drop time are discarded —
    /// every executor call drains its own results before returning, so
    /// nothing observable is in flight when a pool can be dropped.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, std::sync::atomic::Ordering::Release);
        self.shared.available.notify_all();
        for handle in self.handles.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

/// Body of a persistent worker thread: pull tasks until the pool shuts
/// down (its `Drop`). A panicking task is contained so one bad job can't
/// kill a pool thread and starve every later sweep — the coordinator
/// detects the missing result and re-raises (see
/// [`execute_streaming_pooled`]).
fn worker_loop(shared: &Shared, serial: u64) {
    use std::sync::atomic::Ordering;
    loop {
        let task = {
            let mut inject = shared.injector.lock().unwrap();
            loop {
                // The commission check outranks pending tasks: the
                // resize target is a thread-count invariant, and any
                // queued task is equally runnable by a commissioned
                // worker (resize never narrows below one). A wakeup
                // this thread absorbed on its way out is forwarded so
                // no queued task loses its signal.
                if !inject.serving.contains(&serial) {
                    if !inject.tasks.is_empty() {
                        shared.available.notify_one();
                    }
                    return;
                }
                if let Some(task) = inject.tasks.pop_front() {
                    break task;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // clamshell-lint: allow(D006) -- condvar poison means a sibling worker panicked; propagating the panic is the contract
                inject = shared.available.wait(inject).unwrap();
            }
        };
        IN_POOL_WORKER.with(|flag| flag.set(true));
        // Contain panics: unwinding drops the task's result sender, so
        // the coordinator observes the missing index instead of hanging,
        // and this thread stays alive for subsequent sweeps.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
        IN_POOL_WORKER.with(|flag| flag.set(false));
        if let Err(payload) = outcome {
            let what = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            eprintln!("clamshell-sweep: pool worker contained a job panic: {what}");
        }
    }
}

/// [`crate::pool::execute_streaming`], but on the persistent pool.
///
/// Semantics are identical to the scoped executor — `f(worker, index,
/// item)` over a work-stealing deal, results delivered to `sink` in
/// strictly increasing index order, `progress` on the coordinating
/// thread — with one addition: the pool is settled to `threads` workers
/// and the threads are *reused* by every subsequent call at the same
/// width instead of being respawned. Jobs must be `'static` (they outlive the
/// caller's stack from the pool's perspective); `sink` and `progress`
/// still run on the calling thread and may borrow freely.
///
/// When called from inside a pool worker (a job that itself sweeps),
/// execution transparently falls back to the scoped executor so a
/// nested sweep can never deadlock waiting for the threads its parent
/// occupies.
pub fn execute_streaming_pooled<T, R, F>(
    pool: &WorkerPool,
    items: Vec<T>,
    threads: usize,
    cancel: &CancelToken,
    progress: Option<ProgressFn<'_>>,
    f: F,
    sink: &mut dyn FnMut(usize, R),
) -> ExecStatus
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(usize, usize, T) -> R + Send + Sync + 'static,
{
    if IN_POOL_WORKER.with(|flag| flag.get()) {
        return crate::pool::execute_streaming(items, threads, cancel, progress, f, sink);
    }
    let total = items.len();
    let workers = threads.max(1).min(total.max(1));
    pool.resize(workers);

    let indexed: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queues = Arc::new(StealQueues::deal(indexed, workers));
    // Same bounded funnel as the scoped path: workers block once
    // `workers` results sit unread, so cancellation stops the fleet
    // within ~2 jobs per worker.
    let (tx, rx) = mpsc::sync_channel::<(usize, R)>(workers);
    let f = Arc::new(f);

    for worker in 0..workers {
        let queues = queues.clone();
        let f = f.clone();
        let tx = tx.clone();
        let cancel = cancel.clone();
        pool.submit(Box::new(move || {
            while !cancel.is_cancelled() {
                let Some(((index, item), _stolen)) = queues.pop(worker) else { break };
                // A send only fails if the receiver hung up, which the
                // coordinator never does before the channel drains.
                let _ = tx.send((index, f(worker, index, item)));
            }
        }));
    }
    // The submitted tasks hold the only remaining senders: `recv` errors
    // out exactly when the last drain task exits.
    drop(tx);

    let delivered = drain_reorder(rx, progress, total, sink);
    // A shortfall without cancellation means a job panicked inside a
    // pool worker (contained there so the pool survives); re-raise on
    // the caller's thread, matching the scoped executor's behavior.
    if delivered < total && !cancel.is_cancelled() {
        panic!(
            "sweep job panicked on the persistent pool: {} of {total} results delivered",
            delivered
        );
    }
    ExecStatus { completed: delivered, total, cancelled: cancel.is_cancelled() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn run_on(pool: &WorkerPool, n: usize, threads: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let status = execute_streaming_pooled(
            pool,
            (0..n).collect(),
            threads,
            &CancelToken::new(),
            None,
            |_, _, j: usize| j * 7,
            &mut |i, r| {
                assert_eq!(i * 7, r);
                out.push(r)
            },
        );
        assert!(status.is_complete());
        out
    }

    /// The serving width is exact immediately; the surplus OS threads
    /// wind down asynchronously, so poll until they are joinable.
    fn assert_settles_to(pool: &WorkerPool, want: usize) {
        assert_eq!(pool.threads(), want, "serving width is deterministic");
        for _ in 0..5000 {
            let os_threads = {
                let mut handles = pool.handles.lock().unwrap();
                WorkerPool::reap(&mut handles);
                handles.len()
            };
            if os_threads == want {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("{want}-wide pool still holds surplus OS threads");
    }

    #[test]
    fn pool_settles_to_each_sweeps_width() {
        let pool = WorkerPool::new();
        assert_eq!(pool.threads(), 0);
        let a = run_on(&pool, 16, 3);
        assert_eq!(pool.threads(), 3);
        let b = run_on(&pool, 16, 3);
        // Thread count unchanged: the second sweep reused the workers.
        assert_eq!(pool.threads(), 3);
        assert_eq!(a, b);
        // A wider sweep grows the pool; a narrower one shrinks it back,
        // rather than stranding parked threads at the high-water mark.
        run_on(&pool, 8, 5);
        assert_eq!(pool.threads(), 5);
        run_on(&pool, 8, 1);
        assert_settles_to(&pool, 1);
    }

    #[test]
    fn alternating_widths_stay_byte_identical_and_do_not_strand_threads() {
        // The monotonic-growth regression: alternating sweep widths must
        // neither accumulate threads nor perturb a single byte of output.
        let pool = WorkerPool::new();
        let reference = run_on(&pool, 24, 1);
        for round in 0..4 {
            for width in [4, 1, 3, 1] {
                assert_eq!(run_on(&pool, 24, width), reference, "round {round} width {width}");
            }
        }
        // After the narrow tail sweep, the pool settles at one worker.
        assert_settles_to(&pool, 1);
        assert!(pool.shared.injector.lock().unwrap().tasks.is_empty());
        // Cancelled retires: growing right back reuses parked workers
        // whose retire request was still pending.
        pool.resize(3);
        pool.resize(1);
        pool.resize(3);
        assert_settles_to(&pool, 3);
        assert_eq!(run_on(&pool, 24, 3), reference);
    }

    #[test]
    fn pooled_results_arrive_in_index_order() {
        let pool = WorkerPool::new();
        let mut seen = Vec::new();
        let items: Vec<u64> = (0..12).map(|i| (12 - i) * 3).collect();
        let status = execute_streaming_pooled(
            &pool,
            items,
            4,
            &CancelToken::new(),
            None,
            |_, idx, ms: u64| {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                idx * 10
            },
            &mut |i, r| seen.push((i, r)),
        );
        assert!(status.is_complete());
        assert_eq!(seen, (0..12).map(|i| (i, i * 10)).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_cancellation_skips_pending_jobs() {
        let pool = WorkerPool::new();
        let cancel = CancelToken::new();
        let cancel_ref = cancel.clone();
        let mut sink_count = 0usize;
        // 'static job closure: count starts through an Arc'd atomic.
        let counter = Arc::new(AtomicUsize::new(0));
        let counter_job = counter.clone();
        let status = execute_streaming_pooled(
            &pool,
            (0..32).collect::<Vec<usize>>(),
            1,
            &cancel,
            Some(&mut |done, _| {
                if done == 2 {
                    cancel_ref.cancel();
                }
            }),
            move |_, _, j: usize| {
                counter_job.fetch_add(1, Ordering::Relaxed);
                j
            },
            &mut |_, _| sink_count += 1,
        );
        assert!(status.cancelled);
        assert!(!status.is_complete());
        assert!(status.completed <= 8, "completed {}", status.completed);
        assert_eq!(status.completed, sink_count);
        assert_eq!(counter.load(Ordering::Relaxed), status.completed);
    }

    #[test]
    fn cancellation_at_every_index_matches_sink_folds() {
        // The cancellation-vs-aggregation contract: no matter where the
        // cancel lands, `ExecStatus::completed` equals the number of
        // results the sink actually folded — an aggregator fed by this
        // executor can never under- or over-count relative to the
        // status it reports.
        let pool = WorkerPool::new();
        let n = 12usize;
        for threads in [1, 4] {
            for kill_after in 1..=n {
                let cancel = CancelToken::new();
                let cancel_ref = cancel.clone();
                let mut folds = 0usize;
                let status = execute_streaming_pooled(
                    &pool,
                    (0..n).collect::<Vec<usize>>(),
                    threads,
                    &cancel,
                    Some(&mut |done, _| {
                        if done == kill_after {
                            cancel_ref.cancel();
                        }
                    }),
                    |_, _, j: usize| j * 3,
                    &mut |i, r| {
                        assert_eq!(r, i * 3);
                        folds += 1;
                    },
                );
                assert_eq!(
                    status.completed, folds,
                    "t={threads} kill@{kill_after}: status/fold divergence"
                );
                assert!(status.cancelled);
                assert!(status.completed >= kill_after, "t={threads} kill@{kill_after}");
            }
        }
    }

    #[test]
    fn job_panic_is_reraised_and_pool_survives() {
        let pool = WorkerPool::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_streaming_pooled(
                &pool,
                vec![1usize, 2, 3, 4],
                2,
                &CancelToken::new(),
                None,
                |_, _, j: usize| {
                    if j == 2 {
                        panic!("job blew up");
                    }
                    j
                },
                &mut |_, _: usize| {},
            )
        }));
        assert!(caught.is_err(), "a panicking job must re-raise on the caller");
        // The workers contained the panic: the same pool still runs
        // complete sweeps afterwards.
        assert_eq!(run_on(&pool, 8, 2), (0..8).map(|j| j * 7).collect::<Vec<_>>());
    }

    #[test]
    fn nested_call_from_worker_falls_back_to_scoped() {
        // A job that itself runs a pooled sweep on the same pool: without
        // the scoped fallback this deadlocks (the only pool thread is
        // busy hosting the outer job while the inner one waits for it).
        let pool = Arc::new(WorkerPool::new());
        let inner_pool = pool.clone();
        let mut outer = Vec::new();
        let status = execute_streaming_pooled(
            &pool,
            vec![10usize, 20],
            1,
            &CancelToken::new(),
            None,
            move |_, _, base: usize| {
                let mut inner = 0usize;
                let st = execute_streaming_pooled(
                    &inner_pool,
                    (0..4).collect::<Vec<usize>>(),
                    2,
                    &CancelToken::new(),
                    None,
                    |_, _, j: usize| j,
                    &mut |_, r| inner += r,
                );
                assert!(st.is_complete());
                base + inner
            },
            &mut |_, r| outer.push(r),
        );
        assert!(status.is_complete());
        assert_eq!(outer, vec![16, 26]);
    }
}
