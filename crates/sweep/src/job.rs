//! The concrete sweep job: one `(RunConfig, task specs, seed)` cell.

use clamshell_core::metrics::RunReport;
use clamshell_core::runner::run_batched;
use clamshell_core::task::TaskSpec;
use clamshell_core::RunConfig;
use clamshell_trace::Population;
use std::sync::Arc;

/// One cell of a sweep grid, ready to run.
///
/// The config already carries its seed; specs and population are shared
/// (`Arc`) across the grid so enumerating a million cells does not clone
/// a million task lists.
#[derive(Debug, Clone)]
pub struct Job {
    /// Position in the grid's enumeration order (scenario-major,
    /// seed-minor). Results are merged back in this order.
    pub index: usize,
    /// Index of the scenario this cell belongs to.
    pub scenario: usize,
    /// The scenario's display label.
    pub label: Arc<str>,
    /// The cell's seed (also stored in `cfg.seed`).
    pub seed: u64,
    /// Fully resolved run configuration.
    pub cfg: RunConfig,
    /// Task specs for this cell.
    pub specs: Arc<Vec<TaskSpec>>,
    /// Batch size handed to the batched runner.
    pub batch_size: usize,
    /// Worker population driving the simulation.
    pub population: Arc<Population>,
}

impl Job {
    /// Run the cell's simulation. Pure: the report is a function of the
    /// job alone, so cells can run on any thread in any order.
    pub fn run(&self) -> RunReport {
        run_batched(
            self.cfg.clone(),
            (*self.population).clone(),
            self.specs.to_vec(),
            self.batch_size,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_run_matches_direct_run_batched() {
        let cfg = RunConfig { pool_size: 4, ng: 2, seed: 5, ..Default::default() };
        let specs: Vec<TaskSpec> = (0..6).map(|i| TaskSpec::new(vec![(i % 2) as u32; 2])).collect();
        let pop = Population::mturk_live();
        let job = Job {
            index: 0,
            scenario: 0,
            label: "base".into(),
            seed: 5,
            cfg: cfg.clone(),
            specs: Arc::new(specs.clone()),
            batch_size: 3,
            population: Arc::new(pop.clone()),
        };
        let via_job = job.run();
        let direct = run_batched(cfg, pop, specs, 3);
        assert_eq!(
            serde_json::to_string(&via_job).unwrap(),
            serde_json::to_string(&direct).unwrap()
        );
    }
}
