//! # clamshell-sweep
//!
//! A deterministic parallel sweep engine for seed × scenario grids.
//!
//! Every CLAMShell figure is a Monte-Carlo average over seeds and a grid
//! of Table-3 knobs (`PMℓ`, `SM`, `Np`, `Ng`, `R`, `Alg`). Each cell of
//! such a grid is an independent simulation — a pure function of its
//! [`RunConfig`](clamshell_core::RunConfig) — so the whole sweep is
//! embarrassingly parallel. This crate fans the cells across a
//! work-stealing thread pool built from `std::thread` + channels (no
//! external dependencies; the build is offline) and merges results back
//! in **job-index order**, so the output of a sweep is byte-identical
//! regardless of thread count or scheduling.
//!
//! ## Layers
//!
//! * [`queue`] — the work-stealing deque set: each worker owns a local
//!   queue and steals from its peers when drained.
//! * [`pool`] — the generic scatter/gather executor: runs any
//!   `Fn(usize, T) -> R` over a job list, streaming `(index, result)`
//!   pairs through a reorder buffer so consumers observe index order.
//! * [`job`] — the concrete sweep job: `(RunConfig, task specs, seed)`
//!   plus its population and batch size, evaluated via
//!   [`run_batched`](clamshell_core::runner::run_batched).
//! * [`grid`] — the [`Grid`] builder: enumerates scenario axes
//!   (mutation closures over a base config) × seeds into jobs.
//! * [`aggregate`] — streaming per-cell statistics on
//!   [`OnlineStats`](clamshell_sim::stats::OnlineStats), so million-cell
//!   sweeps never buffer every [`RunReport`](clamshell_core::metrics::RunReport).
//! * [`persistent`] — the process-wide [`WorkerPool`]: long-lived
//!   threads parked between sweeps, reused by every [`Grid`] run so
//!   repeated sweeps stop paying thread spawn.
//! * [`shard`] — mega-sweep scale-out: [`run_sharded`] walks the grid
//!   in bounded chunks with an FNV-chained checkpoint manifest, so a
//!   killed million-cell sweep resumes at the last completed shard with
//!   bit-identical final statistics.
//! * [`progress`] — cancellation tokens and completion callbacks.
//! * [`threads`] — thread-count resolution (see below).
//!
//! ## Thread-count resolution
//!
//! Every entry point takes `threads: Option<usize>` and resolves it
//! through [`threads::resolve`], in priority order:
//!
//! 1. the explicit argument (the `repro` binary's `--threads N` flag
//!    passes through here) — ignored if zero;
//! 2. the `CLAMSHELL_THREADS` environment variable — ignored if unset,
//!    unparsable, or zero;
//! 3. [`std::thread::available_parallelism`], floored at 1.
//!
//! The choice only affects wall-clock time, never output: results merge
//! in job-index order at any thread count (CI runs the whole workspace
//! suite under `CLAMSHELL_THREADS=1` and `=4` to enforce that).
//!
//! ## Quick start
//!
//! ```
//! use clamshell_core::{task::TaskSpec, RunConfig};
//! use clamshell_sweep::{Grid, MetricsAggregator, Metric};
//! use clamshell_trace::Population;
//!
//! let specs: Vec<TaskSpec> =
//!     (0..8).map(|i| TaskSpec::new(vec![(i % 2) as u32; 2])).collect();
//! let grid = Grid::new(
//!     RunConfig { pool_size: 4, ng: 2, ..Default::default() },
//!     Population::mturk_live(),
//!     specs,
//!     4,
//! )
//! .seeds(&[1, 2, 3])
//! .scenario("SM", |c| c.straggler = Some(Default::default()))
//! .scenario("NoSM", |c| c.straggler = None);
//!
//! // Grouped reports, scenario-major, seeds in declared order.
//! let grouped = grid.run_grouped(Some(2));
//! assert_eq!(grouped.len(), 2);
//! assert_eq!(grouped[0].len(), 3);
//!
//! // Or stream into per-scenario statistics without buffering reports.
//! let mut agg = MetricsAggregator::new(grid.n_scenarios(), Metric::standard());
//! grid.run_streaming(Some(2), &mut agg);
//! assert_eq!(agg.stats(0, "total_secs").count(), 3);
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod grid;
pub mod job;
pub mod persistent;
pub mod pool;
pub mod progress;
pub mod queue;
pub mod shard;
pub mod threads;

pub use aggregate::{Aggregator, Metric, MetricsAggregator, ObsAggregator};
pub use grid::{Grid, GridError, JobMeta, Scenario};
pub use persistent::{execute_streaming_pooled, WorkerPool};
pub use pool::{execute, execute_streaming, ExecStatus};
pub use progress::{CancelToken, ProgressFn};
pub use queue::StealQueues;
pub use shard::{run_sharded, ShardError, ShardOptions, ShardOutcome};
