//! The work-stealing deque set.
//!
//! Each worker owns a local double-ended queue. Jobs are dealt
//! round-robin across the queues up front (low indices spread wide, so
//! the in-order reorder buffer drains early), then a worker pops from
//! the **front** of its own queue and, once drained, steals from the
//! **back** of its peers'. Stealing from the opposite end keeps thieves
//! off the cache-warm front of a victim's queue and minimizes lock
//! hold-time disputes.
//!
//! Mutex-guarded `VecDeque`s rather than lock-free Chase–Lev deques: a
//! sweep job is an entire discrete-event simulation (milliseconds to
//! seconds), so queue overhead is noise and the simple implementation is
//! auditable. No jobs are ever produced after construction, which makes
//! "every queue observed empty" a correct termination condition.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A fixed set of per-worker work-stealing queues.
#[derive(Debug)]
pub struct StealQueues<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
}

impl<T> StealQueues<T> {
    /// Deal `items` round-robin across `workers` queues.
    ///
    /// Item `i` lands in queue `i % workers`, preserving index order
    /// within each queue, so worker `w`'s local queue holds items
    /// `w, w + workers, w + 2·workers, …` front-to-back.
    pub fn deal(items: Vec<T>, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker queue");
        let mut queues: Vec<VecDeque<T>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            queues[i % workers].push_back(item);
        }
        StealQueues { queues: queues.into_iter().map(Mutex::new).collect() }
    }

    /// Number of worker queues.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Pop the next job for `worker`: front of its own queue, else steal
    /// from the back of the first non-empty peer (scanning `worker + 1`,
    /// `worker + 2`, … circularly). `None` means every queue was
    /// observed empty — with no producers, that worker is done.
    ///
    /// The returned flag is `true` when the job was stolen rather than
    /// taken locally (exposed for scheduling tests and diagnostics).
    pub fn pop(&self, worker: usize) -> Option<(T, bool)> {
        debug_assert!(worker < self.queues.len());
        if let Some(job) = self.queues[worker].lock().unwrap().pop_front() {
            return Some((job, false));
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (worker + off) % n;
            if let Some(job) = self.queues[victim].lock().unwrap().pop_back() {
                return Some((job, true));
            }
        }
        None
    }

    /// Total jobs currently queued (racy under concurrent pops; exact
    /// when quiescent).
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.lock().unwrap().len()).sum()
    }

    /// True when every queue is empty (same caveat as [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deal_is_round_robin_in_index_order() {
        let q = StealQueues::deal((0..7).collect(), 3);
        assert_eq!(q.workers(), 3);
        assert_eq!(q.len(), 7);
        // Worker 0 drains its own queue front-to-back: 0, 3, 6.
        let own: Vec<_> = (0..3).map(|_| q.pop(0).unwrap()).collect();
        assert_eq!(own.iter().map(|(j, _)| *j).collect::<Vec<_>>(), vec![0, 3, 6]);
        assert!(own.iter().all(|&(_, stolen)| !stolen));
    }

    #[test]
    fn drained_worker_steals_from_peers_back() {
        let q = StealQueues::deal((0..6).collect(), 3);
        // Drain worker 2's local items (2, 5).
        assert_eq!(q.pop(2).unwrap(), (2, false));
        assert_eq!(q.pop(2).unwrap(), (5, false));
        // Next pop steals from worker 0's back: its queue is [0, 3].
        assert_eq!(q.pop(2).unwrap(), (3, true));
        assert_eq!(q.pop(2).unwrap(), (0, true));
        // Then worker 1's back.
        assert_eq!(q.pop(2).unwrap(), (4, true));
        assert_eq!(q.pop(2).unwrap(), (1, true));
        assert_eq!(q.pop(2), None);
        assert!(q.is_empty());
    }

    #[test]
    fn single_worker_sees_pure_index_order() {
        let q = StealQueues::deal((0..5).collect(), 1);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop(0).map(|(j, _)| j)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
