//! Thread-count resolution.
//!
//! This module is one of the workspace's two sanctioned
//! process-environment ingress points (see the determinism rule catalog
//! in ARCHITECTURE.md, rule D003): the thread count only affects
//! wall-clock time, never output bytes, so reading it here is safe.

/// Environment variable consulted when no explicit thread count is given.
pub const THREADS_ENV: &str = "CLAMSHELL_THREADS";

/// Resolve the worker-thread count for a sweep.
///
/// Priority: the `explicit` argument, then the [`THREADS_ENV`]
/// environment variable, then [`std::thread::available_parallelism`].
/// The result is always at least 1; unparsable or zero values fall
/// through to the next source (a bad environment value additionally
/// prints a one-line warning to stderr, once per process, instead of
/// being silently ignored). Because the engine merges results in
/// job-index order, the choice only affects wall-clock time, never
/// output.
///
/// ```
/// use clamshell_sweep::threads::resolve;
///
/// assert_eq!(resolve(Some(3)), 3);
/// assert!(resolve(None) >= 1); // env var or available parallelism
/// assert!(resolve(Some(0)) >= 1); // zero falls through
/// ```
pub fn resolve(explicit: Option<usize>) -> usize {
    resolve_with(explicit, std::env::var(THREADS_ENV).ok().as_deref(), true)
}

/// [`resolve`] with the environment read factored out so the fallback
/// logic is unit-testable without touching process state. `warn` gates
/// the stderr message (tests pass `false` to keep output clean).
fn resolve_with(explicit: Option<usize>, env_value: Option<&str>, warn: bool) -> usize {
    explicit
        .filter(|&n| n > 0)
        .or_else(|| env_value.and_then(|raw| parse_env_threads(raw, warn)))
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        .max(1)
}

/// Parse an environment-provided thread count; `None` (with a one-shot
/// stderr warning naming the bad value) when it is not a positive
/// integer.
fn parse_env_threads(raw: &str, warn: bool) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            if warn {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: {THREADS_ENV}={raw:?} is not a positive integer; \
                         falling back to available parallelism"
                    );
                });
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_wins() {
        assert_eq!(resolve(Some(3)), 3);
    }

    #[test]
    fn zero_explicit_falls_through() {
        assert!(resolve(Some(0)) >= 1);
    }

    #[test]
    fn default_is_positive() {
        assert!(resolve(None) >= 1);
    }

    #[test]
    fn env_value_is_used_when_valid() {
        assert_eq!(resolve_with(None, Some("6"), false), 6);
        assert_eq!(resolve_with(None, Some("  2 "), false), 2);
    }

    #[test]
    fn explicit_beats_env() {
        assert_eq!(resolve_with(Some(3), Some("6"), false), 3);
    }

    #[test]
    fn unparsable_env_falls_back_to_default() {
        for bad in ["four", "", "-2", "3.5", "0"] {
            let n = resolve_with(None, Some(bad), false);
            assert!(n >= 1, "fallback for {bad:?} must be positive, got {n}");
            // The bad value must not sneak in as a thread count.
            assert_eq!(
                n,
                resolve_with(None, None, false),
                "bad env value {bad:?} must behave exactly like an unset variable"
            );
        }
    }

    #[test]
    fn bad_values_are_rejected_by_the_parser() {
        assert_eq!(parse_env_threads("four", false), None);
        assert_eq!(parse_env_threads("0", false), None);
        assert_eq!(parse_env_threads("8", false), Some(8));
    }
}
