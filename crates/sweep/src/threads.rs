//! Thread-count resolution.

/// Environment variable consulted when no explicit thread count is given.
pub const THREADS_ENV: &str = "CLAMSHELL_THREADS";

/// Resolve the worker-thread count for a sweep.
///
/// Priority: the `explicit` argument, then the [`THREADS_ENV`]
/// environment variable, then [`std::thread::available_parallelism`].
/// The result is always at least 1; unparsable or zero values fall
/// through to the next source. Because the engine merges results in
/// job-index order, the choice only affects wall-clock time, never
/// output.
///
/// ```
/// use clamshell_sweep::threads::resolve;
///
/// assert_eq!(resolve(Some(3)), 3);
/// assert!(resolve(None) >= 1); // env var or available parallelism
/// assert!(resolve(Some(0)) >= 1); // zero falls through
/// ```
pub fn resolve(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&n| n > 0)
        .or_else(|| {
            std::env::var(THREADS_ENV).ok().and_then(|v| v.trim().parse().ok()).filter(|&n| n > 0)
        })
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_wins() {
        assert_eq!(resolve(Some(3)), 3);
    }

    #[test]
    fn zero_explicit_falls_through() {
        assert!(resolve(Some(0)) >= 1);
    }

    #[test]
    fn default_is_positive() {
        assert!(resolve(None) >= 1);
    }
}
