//! Streaming aggregation: per-scenario statistics without buffering
//! reports.
//!
//! A full [`RunReport`] holds every task, assignment, and batch of a
//! run — far too heavy to keep around for a million-cell sweep. The
//! [`Aggregator`] trait receives each report exactly once, in job-index
//! order, and is expected to fold it into constant-size state.
//! [`MetricsAggregator`] is the standard implementation: one
//! [`OnlineStats`] (Welford) accumulator per scenario × metric, merged
//! across partial aggregators with the parallel-Welford rule, so the
//! retained state is `O(scenarios × metrics)` regardless of sweep size.

use crate::grid::JobMeta;
use clamshell_core::metrics::RunReport;
use clamshell_obs::MetricsSnapshot;
use clamshell_sim::stats::OnlineStats;

/// A streaming consumer of sweep results.
///
/// `consume` is called once per completed cell. Calls arrive in strictly
/// increasing job-index order (with gaps only after a cancellation), on
/// the coordinating thread — implementations need no synchronization.
pub trait Aggregator {
    /// Fold one cell's report into the aggregate.
    fn consume(&mut self, meta: &JobMeta, report: &RunReport);
}

/// Blanket impl so plain closures can serve as aggregators.
impl<F: FnMut(&JobMeta, &RunReport)> Aggregator for F {
    fn consume(&mut self, meta: &JobMeta, report: &RunReport) {
        self(meta, report)
    }
}

/// One scalar metric extracted from a [`RunReport`].
#[derive(Debug, Clone, Copy)]
pub struct Metric {
    /// Metric name, used to address columns in the aggregate table.
    pub name: &'static str,
    /// Extractor mapping a report to the metric value.
    pub extract: fn(&RunReport) -> f64,
}

impl Metric {
    /// The harness's standard metric set: wall-clock, throughput,
    /// per-batch latency variability, tail latency (via
    /// [`Summary`](clamshell_sim::stats::Summary)), and cost.
    pub fn standard() -> Vec<Metric> {
        vec![
            Metric { name: "total_secs", extract: |r| r.total_secs() },
            Metric { name: "throughput", extract: |r| r.throughput() },
            Metric { name: "mean_batch_std", extract: |r| r.mean_batch_std() },
            Metric { name: "p95_task_latency", extract: |r| r.task_latency_summary().p95 },
            Metric { name: "cost_usd", extract: |r| r.cost.total_usd() },
        ]
    }
}

/// Per-scenario streaming statistics over a fixed metric set.
///
/// Cell `(scenario s, metric m)` accumulates one [`OnlineStats`] across
/// the scenario's seeds. Two aggregators built from disjoint slices of
/// the same sweep [`merge`](Self::merge) into exactly the aggregator of
/// the whole sweep (parallel Welford), which is what the engine's
/// deterministic-fold tests pin down.
#[derive(Debug, Clone)]
pub struct MetricsAggregator {
    metrics: Vec<Metric>,
    /// `cells[scenario][metric]`.
    cells: Vec<Vec<OnlineStats>>,
}

impl MetricsAggregator {
    /// An empty aggregator for `n_scenarios` rows over `metrics`.
    pub fn new(n_scenarios: usize, metrics: Vec<Metric>) -> Self {
        assert!(!metrics.is_empty(), "need at least one metric");
        let cells = vec![vec![OnlineStats::new(); metrics.len()]; n_scenarios];
        MetricsAggregator { metrics, cells }
    }

    /// The metric set, in column order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Number of scenario rows.
    pub fn n_scenarios(&self) -> usize {
        self.cells.len()
    }

    /// Column index of `metric`, panicking on unknown names (a typo'd
    /// metric is a programming error, not data).
    fn column(&self, metric: &str) -> usize {
        self.metrics
            .iter()
            .position(|m| m.name == metric)
            .unwrap_or_else(|| panic!("unknown metric {metric:?}"))
    }

    /// Accumulated statistics for `(scenario, metric)`.
    pub fn stats(&self, scenario: usize, metric: &str) -> &OnlineStats {
        &self.cells[scenario][self.column(metric)]
    }

    /// Mean of `metric` over the seeds of `scenario`.
    pub fn mean(&self, scenario: usize, metric: &str) -> f64 {
        self.stats(scenario, metric).mean()
    }

    /// Standard deviation of `metric` over the seeds of `scenario`.
    pub fn std(&self, scenario: usize, metric: &str) -> f64 {
        self.stats(scenario, metric).std()
    }

    /// Merge another partial aggregate (same shape) into this one.
    ///
    /// Zero-count cells are the identity on either side (guaranteed by
    /// [`OnlineStats::merge`]'s guards), so merging a shard whose
    /// scenario rows exist but have no completed seeds yet never
    /// NaN-poisons the populated side — the shape asserts here are about
    /// *structure*, not counts.
    pub fn merge(&mut self, other: &MetricsAggregator) {
        assert_eq!(self.cells.len(), other.cells.len(), "scenario count mismatch");
        assert_eq!(self.metrics.len(), other.metrics.len(), "metric count mismatch");
        for (mine, theirs) in self.cells.iter_mut().zip(&other.cells) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                a.merge(b);
            }
        }
    }

    /// Number of metric columns.
    pub fn n_metrics(&self) -> usize {
        self.metrics.len()
    }

    /// Checkpoint encoding: every cell's exact accumulator state as
    /// integer words, scenario-major, three words per cell
    /// ([`OnlineStats::to_words`]). Floats travel as IEEE-754 bit
    /// patterns, so a [`Self::restore_words`] round-trip is bit-exact —
    /// the property shard-manifest resume depends on.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.cells.len() * self.metrics.len() * 3);
        for row in &self.cells {
            for cell in row {
                out.extend_from_slice(&cell.to_words());
            }
        }
        out
    }

    /// Restore every cell from a [`Self::snapshot_words`] encoding.
    /// Fails (leaving `self` untouched) when the word count does not
    /// match this aggregator's `scenarios × metrics × 3` shape.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), SnapshotShapeError> {
        let expected = self.cells.len() * self.metrics.len() * 3;
        if words.len() != expected {
            return Err(SnapshotShapeError { expected, got: words.len() });
        }
        let mut it = words.chunks_exact(3);
        for row in &mut self.cells {
            for cell in row {
                if let Some(w) = it.next() {
                    *cell = OnlineStats::from_words([w[0], w[1], w[2]]);
                }
            }
        }
        Ok(())
    }
}

/// A snapshot's word count did not match the aggregator shape it was
/// restored into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotShapeError {
    /// Words the aggregator's shape requires.
    pub expected: usize,
    /// Words the snapshot supplied.
    pub got: usize,
}

impl std::fmt::Display for SnapshotShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "aggregate snapshot holds {} words but the grid shape needs {}",
            self.got, self.expected
        )
    }
}

impl std::error::Error for SnapshotShapeError {}

impl Aggregator for MetricsAggregator {
    fn consume(&mut self, meta: &JobMeta, report: &RunReport) {
        let row = &mut self.cells[meta.scenario];
        for (cell, metric) in row.iter_mut().zip(&self.metrics) {
            cell.push((metric.extract)(report));
        }
    }
}

/// Per-scenario fold of the observability registries attached to
/// instrumented runs (`RunConfig::obs.enabled`).
///
/// Each job's [`MetricsSnapshot`] merges into its scenario row in
/// job-index order — counters sum, gauges (high-water marks such as
/// `runner.queue_depth_hwm`) take the max, histograms add bucket-wise —
/// exactly the shape of the [`OnlineStats`] fold above, so partial
/// aggregators built from disjoint sweep slices [`merge`](Self::merge)
/// into the whole-sweep aggregate. Uninstrumented reports (`obs: None`)
/// fold as empty and only bump the job count, so the aggregator is safe
/// to attach to any grid.
#[derive(Debug, Clone)]
pub struct ObsAggregator {
    /// `rows[scenario]`: merged snapshot across the scenario's jobs.
    rows: Vec<MetricsSnapshot>,
    /// Jobs consumed per scenario (instrumented or not).
    jobs: Vec<u64>,
    /// Jobs per scenario that actually carried an obs report.
    instrumented: Vec<u64>,
}

impl ObsAggregator {
    /// An empty aggregator over `n_scenarios` rows.
    pub fn new(n_scenarios: usize) -> Self {
        ObsAggregator {
            rows: vec![MetricsSnapshot::default(); n_scenarios],
            jobs: vec![0; n_scenarios],
            instrumented: vec![0; n_scenarios],
        }
    }

    /// Number of scenario rows.
    pub fn n_scenarios(&self) -> usize {
        self.rows.len()
    }

    /// The merged snapshot for `scenario`.
    pub fn snapshot(&self, scenario: usize) -> &MetricsSnapshot {
        &self.rows[scenario]
    }

    /// Summed counter `name` across the scenario's jobs (0 if absent).
    pub fn counter(&self, scenario: usize, name: &str) -> u64 {
        self.rows[scenario].counters.get(name).copied().unwrap_or(0)
    }

    /// Max gauge `name` across the scenario's jobs (0 if absent) — for
    /// high-water marks this is the sweep-wide high-water mark.
    pub fn gauge(&self, scenario: usize, name: &str) -> u64 {
        self.rows[scenario].gauges.get(name).copied().unwrap_or(0)
    }

    /// Jobs consumed for `scenario`.
    pub fn jobs(&self, scenario: usize) -> u64 {
        self.jobs[scenario]
    }

    /// Jobs for `scenario` that carried an obs report.
    pub fn instrumented(&self, scenario: usize) -> u64 {
        self.instrumented[scenario]
    }

    /// Merge another partial aggregate (same shape) into this one.
    pub fn merge(&mut self, other: &ObsAggregator) {
        assert_eq!(self.rows.len(), other.rows.len(), "scenario count mismatch");
        for (mine, theirs) in self.rows.iter_mut().zip(&other.rows) {
            mine.merge(theirs);
        }
        for (a, b) in self.jobs.iter_mut().zip(&other.jobs) {
            *a += b;
        }
        for (a, b) in self.instrumented.iter_mut().zip(&other.instrumented) {
            *a += b;
        }
    }
}

impl Aggregator for ObsAggregator {
    fn consume(&mut self, meta: &JobMeta, report: &RunReport) {
        self.jobs[meta.scenario] += 1;
        if let Some(obs) = &report.obs {
            self.instrumented[meta.scenario] += 1;
            self.rows[meta.scenario].merge(&obs.metrics);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use clamshell_core::task::TaskSpec;
    use clamshell_core::RunConfig;
    use clamshell_trace::Population;
    use std::sync::Arc;

    fn grid() -> Grid {
        let specs: Vec<TaskSpec> = (0..4).map(|i| TaskSpec::new(vec![(i % 2) as u32; 2])).collect();
        Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            specs,
            4,
        )
        .seeds(&[1, 2, 3, 4])
        .scenario("sm", |c| c.straggler = Some(Default::default()))
        .scenario("nosm", |c| c.straggler = None)
    }

    #[test]
    fn streaming_aggregate_matches_serial_fold() {
        let g = grid();
        let mut agg = MetricsAggregator::new(g.n_scenarios(), Metric::standard());
        let status = g.run_streaming(Some(4), &mut agg);
        assert!(status.is_complete());

        // Serial reference fold over the same reports.
        let reports = g.run_all(Some(1));
        let mut reference = MetricsAggregator::new(g.n_scenarios(), Metric::standard());
        for (i, r) in reports.iter().enumerate() {
            reference.consume(&g.meta(i), r);
        }
        for s in 0..g.n_scenarios() {
            for m in agg.metrics().to_vec() {
                assert_eq!(agg.stats(s, m.name).count(), 4);
                assert_eq!(
                    agg.stats(s, m.name),
                    reference.stats(s, m.name),
                    "cell ({s}, {})",
                    m.name
                );
            }
        }
    }

    #[test]
    fn merge_of_partials_equals_whole() {
        let g = grid();
        let reports = g.run_all(Some(1));
        let metas: Vec<_> = (0..g.n_jobs()).map(|i| g.meta(i)).collect();

        let mut whole = MetricsAggregator::new(g.n_scenarios(), Metric::standard());
        for (meta, r) in metas.iter().zip(&reports) {
            whole.consume(meta, r);
        }
        let mut left = MetricsAggregator::new(g.n_scenarios(), Metric::standard());
        let mut right = MetricsAggregator::new(g.n_scenarios(), Metric::standard());
        for (meta, r) in metas.iter().zip(&reports) {
            if meta.index % 2 == 0 {
                left.consume(meta, r);
            } else {
                right.consume(meta, r);
            }
        }
        left.merge(&right);
        for s in 0..g.n_scenarios() {
            for m in whole.metrics().to_vec() {
                let (a, b) = (left.stats(s, m.name), whole.stats(s, m.name));
                assert_eq!(a.count(), b.count());
                assert!((a.mean() - b.mean()).abs() < 1e-9, "mean cell ({s}, {})", m.name);
                assert!(
                    (a.variance() - b.variance()).abs() < 1e-9,
                    "variance cell ({s}, {})",
                    m.name
                );
            }
        }
    }

    #[test]
    fn merge_with_zero_count_sides_is_identity() {
        // An "empty shard" has the full scenario × metric shape but no
        // completed seeds — its cells all hold zero counts. Merging one
        // in (either direction) must be the identity, bit-for-bit, and
        // never NaN-poison means or stds.
        let g = grid();
        let mut populated = MetricsAggregator::new(g.n_scenarios(), Metric::standard());
        let status = g.run_streaming(Some(2), &mut populated);
        assert!(status.is_complete());
        let reference = populated.snapshot_words();

        // empty-right: populated ∪ empty == populated.
        let empty = MetricsAggregator::new(g.n_scenarios(), Metric::standard());
        populated.merge(&empty);
        assert_eq!(populated.snapshot_words(), reference);

        // empty-left: empty ∪ populated == populated.
        let mut left = MetricsAggregator::new(g.n_scenarios(), Metric::standard());
        left.merge(&populated);
        assert_eq!(left.snapshot_words(), reference);

        // empty-both: still empty, all summary statistics finite.
        let mut both = MetricsAggregator::new(g.n_scenarios(), Metric::standard());
        both.merge(&MetricsAggregator::new(g.n_scenarios(), Metric::standard()));
        for s in 0..g.n_scenarios() {
            for m in both.metrics().to_vec() {
                assert_eq!(both.stats(s, m.name).count(), 0);
                assert!(both.mean(s, m.name).is_finite(), "cell ({s}, {}) mean", m.name);
                assert!(both.std(s, m.name).is_finite(), "cell ({s}, {}) std", m.name);
            }
        }

        // And the populated side stayed NaN-free throughout.
        for s in 0..g.n_scenarios() {
            for m in populated.metrics().to_vec() {
                assert!(populated.mean(s, m.name).is_finite());
                assert!(populated.std(s, m.name).is_finite());
            }
        }
    }

    #[test]
    fn snapshot_words_round_trip_is_bit_exact() {
        let g = grid();
        let mut agg = MetricsAggregator::new(g.n_scenarios(), Metric::standard());
        let status = g.run_streaming(Some(2), &mut agg);
        assert!(status.is_complete());
        let words = agg.snapshot_words();
        assert_eq!(words.len(), g.n_scenarios() * agg.n_metrics() * 3);

        let mut restored = MetricsAggregator::new(g.n_scenarios(), Metric::standard());
        restored.restore_words(&words).unwrap();
        assert_eq!(restored.snapshot_words(), words);
        for s in 0..g.n_scenarios() {
            for m in agg.metrics().to_vec() {
                assert_eq!(restored.stats(s, m.name), agg.stats(s, m.name));
            }
        }

        // Shape mismatches are rejected without touching the target.
        let mut wrong = MetricsAggregator::new(g.n_scenarios() + 1, Metric::standard());
        let err = wrong.restore_words(&words).unwrap_err();
        assert_eq!(err.got, words.len());
        assert!(err.to_string().contains("snapshot"));
    }

    #[test]
    fn closure_aggregators_work() {
        let g = grid();
        let labels = Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
        let labels2 = labels.clone();
        let mut agg = move |meta: &JobMeta, _report: &RunReport| {
            labels2.lock().unwrap().push(format!("{}:{}", meta.label, meta.seed));
        };
        g.run_streaming(Some(2), &mut agg);
        let got = labels.lock().unwrap().clone();
        assert_eq!(got.len(), 8);
        assert_eq!(got[0], "sm:1");
        assert_eq!(got[7], "nosm:4");
    }

    #[test]
    #[should_panic(expected = "unknown metric")]
    fn unknown_metric_panics() {
        let agg = MetricsAggregator::new(1, Metric::standard());
        agg.mean(0, "nope");
    }

    fn obs_grid() -> Grid {
        let specs: Vec<TaskSpec> = (0..4).map(|i| TaskSpec::new(vec![(i % 2) as u32; 2])).collect();
        Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() }.with_obs(),
            Population::mturk_live(),
            specs,
            4,
        )
        .seeds(&[1, 2, 3])
        .scenario("sm", |c| c.straggler = Some(Default::default()))
        .scenario("nosm", |c| c.straggler = None)
    }

    #[test]
    fn obs_streaming_fold_matches_serial_and_reconciles() {
        let g = obs_grid();
        let mut agg = ObsAggregator::new(g.n_scenarios());
        let status = g.run_streaming(Some(4), &mut agg);
        assert!(status.is_complete());

        let reports = g.run_all(Some(1));
        let mut reference = ObsAggregator::new(g.n_scenarios());
        for (i, r) in reports.iter().enumerate() {
            reference.consume(&g.meta(i), r);
        }
        for s in 0..g.n_scenarios() {
            assert_eq!(agg.jobs(s), 3);
            assert_eq!(agg.instrumented(s), 3);
            assert_eq!(agg.snapshot(s), reference.snapshot(s), "row {s}");
            // Counters sum across seeds: every dispatch had a checkout.
            assert!(agg.counter(s, "runner.dispatch") > 0);
            assert_eq!(agg.counter(s, "runner.checkout"), agg.counter(s, "runner.dispatch"));
            // The gauge row is the sweep-wide queue-depth high-water mark.
            let hwm = agg.gauge(s, "runner.queue_depth_hwm");
            let per_job_max = reports
                .iter()
                .enumerate()
                .filter(|(i, _)| g.meta(*i).scenario == s)
                .map(|(_, r)| {
                    *r.obs.as_ref().unwrap().metrics.gauges.get("runner.queue_depth_hwm").unwrap()
                })
                .max()
                .unwrap();
            assert_eq!(hwm, per_job_max);
        }
    }

    #[test]
    fn obs_merge_of_partials_equals_whole() {
        let g = obs_grid();
        let reports = g.run_all(Some(1));
        let mut whole = ObsAggregator::new(g.n_scenarios());
        let mut left = ObsAggregator::new(g.n_scenarios());
        let mut right = ObsAggregator::new(g.n_scenarios());
        for (i, r) in reports.iter().enumerate() {
            let meta = g.meta(i);
            whole.consume(&meta, r);
            if i % 2 == 0 {
                left.consume(&meta, r);
            } else {
                right.consume(&meta, r);
            }
        }
        left.merge(&right);
        for s in 0..g.n_scenarios() {
            assert_eq!(left.jobs(s), whole.jobs(s));
            assert_eq!(left.instrumented(s), whole.instrumented(s));
            assert_eq!(left.snapshot(s), whole.snapshot(s), "row {s}");
        }
    }

    #[test]
    fn obs_aggregator_tolerates_uninstrumented_runs() {
        let g = grid(); // obs disabled in the base config
        let mut agg = ObsAggregator::new(g.n_scenarios());
        let status = g.run_streaming(Some(2), &mut agg);
        assert!(status.is_complete());
        for s in 0..g.n_scenarios() {
            assert_eq!(agg.jobs(s), 4);
            assert_eq!(agg.instrumented(s), 0);
            assert!(agg.snapshot(s).is_empty());
        }
    }
}
