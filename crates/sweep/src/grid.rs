//! The [`Grid`] builder: scenario axes × seeds → an indexed job list.

use crate::aggregate::Aggregator;
use crate::job::Job;
use crate::persistent;
use crate::pool::ExecStatus;
use crate::progress::{CancelToken, ProgressFn};
use crate::threads;
use clamshell_core::metrics::RunReport;
use clamshell_core::task::TaskSpec;
use clamshell_core::{PoolConfig, RunConfig};
use clamshell_trace::Population;
use std::sync::Arc;

/// Why a grid cannot run: structural problems caught *before* any job is
/// dispatched, so a bad grid fails fast with a typed error instead of
/// panicking mid-sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// The seed axis is empty (a grid of zero cells).
    EmptySeedAxis,
    /// Two scenarios share a label; results keyed by label would silently
    /// collide.
    DuplicateScenario {
        /// The offending label.
        label: String,
    },
    /// Two pool variants share a label; combined cell labels would
    /// silently collide.
    DuplicateVariant {
        /// The offending label.
        label: String,
    },
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::EmptySeedAxis => write!(f, "grid has an empty seed axis"),
            GridError::DuplicateScenario { label } => {
                write!(f, "grid declares scenario label {label:?} more than once")
            }
            GridError::DuplicateVariant { label } => {
                write!(f, "grid declares pool-variant label {label:?} more than once")
            }
        }
    }
}

impl std::error::Error for GridError {}

/// One axis point of a grid: a labeled mutation of the base config,
/// optionally overriding the grid's task specs and batch size (needed by
/// sweeps where the knob changes the workload shape, e.g. the `R` and
/// `Ng` axes of Figures 3 and 9–10).
pub struct Scenario {
    label: Arc<str>,
    mutate: Arc<dyn Fn(&mut RunConfig) + Send + Sync>,
    specs: Option<Arc<Vec<TaskSpec>>>,
    batch_size: Option<usize>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("label", &self.label)
            .field("specs", &self.specs.as_ref().map(|s| s.len()))
            .field("batch_size", &self.batch_size)
            .finish()
    }
}

/// Identity of one grid cell, as handed to streaming aggregators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobMeta {
    /// Position in enumeration order.
    pub index: usize,
    /// Scenario index (row of the grid).
    pub scenario: usize,
    /// Pool-variant index (0 when the grid declares no variants).
    pub variant: usize,
    /// Scenario label (suffixed `"/variant"` when variants are declared).
    pub label: Arc<str>,
    /// The cell's seed.
    pub seed: u64,
}

/// Builder for a seed × scenario sweep over
/// [`run_batched`](clamshell_core::runner::run_batched).
///
/// Enumeration order is **scenario-major, variant-mid, seed-minor** in
/// declaration order: scenario 0 × variant 0 × every seed, then
/// scenario 0 × variant 1 × every seed, and so on. Job `index` is the
/// position in that order, and every result-returning method presents
/// reports in it, which is what makes sweeps deterministic across
/// thread counts. A grid with no declared scenarios runs the base
/// config as a single implicit scenario labeled `"base"`; a grid with
/// no declared pool variants has a single implicit variant (the base
/// config's own [`PoolConfig`]) that adds no label suffix — the
/// historical labels and enumeration exactly.
pub struct Grid {
    base: RunConfig,
    population: Arc<Population>,
    specs: Arc<Vec<TaskSpec>>,
    batch_size: usize,
    seeds: Vec<u64>,
    scenarios: Vec<Scenario>,
    /// Pool-lifecycle axis: labeled [`PoolConfig`]s crossed against every
    /// scenario. Empty = the single implicit variant.
    pool_variants: Vec<(Arc<str>, PoolConfig)>,
}

impl std::fmt::Debug for Grid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Grid")
            .field("seeds", &self.seeds)
            .field("scenarios", &self.scenarios)
            .field("specs", &self.specs.len())
            .field("batch_size", &self.batch_size)
            .finish()
    }
}

impl Grid {
    /// A grid over `base`, labeling `specs` in batches of `batch_size`
    /// against `population`. Starts with the base config's seed as the
    /// only seed and no scenarios.
    pub fn new(
        base: RunConfig,
        population: Population,
        specs: Vec<TaskSpec>,
        batch_size: usize,
    ) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        let seeds = vec![base.seed];
        Grid {
            base,
            population: Arc::new(population),
            specs: Arc::new(specs),
            batch_size,
            seeds,
            scenarios: Vec::new(),
            pool_variants: Vec::new(),
        }
    }

    /// Set the seed axis (replaces the default single seed). An empty
    /// axis is accepted here and reported as
    /// [`GridError::EmptySeedAxis`] by [`Grid::validate`] / the `try_*`
    /// entry points.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Check the grid is structurally runnable: a non-empty seed axis
    /// and no duplicate scenario or pool-variant labels. Every run entry
    /// point calls this first, so an invalid grid fails before any cell
    /// executes.
    pub fn validate(&self) -> Result<(), GridError> {
        if self.seeds.is_empty() {
            return Err(GridError::EmptySeedAxis);
        }
        let mut seen = std::collections::BTreeSet::new();
        for s in &self.scenarios {
            if !seen.insert(&*s.label) {
                return Err(GridError::DuplicateScenario { label: s.label.to_string() });
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for (label, _) in &self.pool_variants {
            if !seen.insert(&**label) {
                return Err(GridError::DuplicateVariant { label: label.to_string() });
            }
        }
        Ok(())
    }

    /// Append a scenario: a labeled mutation of the base config.
    pub fn scenario(
        mut self,
        label: impl Into<Arc<str>>,
        mutate: impl Fn(&mut RunConfig) + Send + Sync + 'static,
    ) -> Self {
        self.scenarios.push(Scenario {
            label: label.into(),
            mutate: Arc::new(mutate),
            specs: None,
            batch_size: None,
        });
        self
    }

    /// Append a scenario that also overrides the task specs and batch
    /// size (for axes that reshape the workload itself).
    pub fn scenario_with(
        mut self,
        label: impl Into<Arc<str>>,
        mutate: impl Fn(&mut RunConfig) + Send + Sync + 'static,
        specs: Vec<TaskSpec>,
        batch_size: usize,
    ) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        self.scenarios.push(Scenario {
            label: label.into(),
            mutate: Arc::new(mutate),
            specs: Some(Arc::new(specs)),
            batch_size: Some(batch_size),
        });
        self
    }

    /// Append a pool-lifecycle variant: a labeled [`PoolConfig`] crossed
    /// against every scenario. Declaring any variant multiplies the grid
    /// by the variant axis and suffixes cell labels `"scenario/variant"`.
    pub fn pool_variant(mut self, label: impl Into<Arc<str>>, config: PoolConfig) -> Self {
        self.pool_variants.push((label.into(), config));
        self
    }

    /// Number of scenario rows (at least 1: the implicit base scenario).
    pub fn n_scenarios(&self) -> usize {
        self.scenarios.len().max(1)
    }

    /// Number of pool variants (at least 1: the implicit base variant).
    pub fn n_variants(&self) -> usize {
        self.pool_variants.len().max(1)
    }

    /// Number of seeds per (scenario, variant) row.
    pub fn n_seeds(&self) -> usize {
        self.seeds.len()
    }

    /// Total cells in the grid.
    pub fn n_jobs(&self) -> usize {
        self.n_scenarios() * self.n_variants() * self.n_seeds()
    }

    /// Combined cell label: the scenario label, suffixed with the
    /// variant label when a variant axis is declared.
    fn cell_label(&self, scenario_label: &Arc<str>, variant: usize) -> Arc<str> {
        match self.pool_variants.get(variant) {
            Some((vlabel, _)) => format!("{scenario_label}/{vlabel}").into(),
            None => scenario_label.clone(),
        }
    }

    /// Cell identity at `index` in enumeration order.
    pub fn meta(&self, index: usize) -> JobMeta {
        assert!(index < self.n_jobs(), "job index {index} out of range");
        let per_scenario = self.n_variants() * self.n_seeds();
        let scenario = index / per_scenario;
        let variant = (index % per_scenario) / self.n_seeds();
        let seed = self.seeds[index % self.n_seeds()];
        let scenario_label: Arc<str> = match self.scenarios.get(scenario) {
            Some(s) => s.label.clone(),
            None => "base".into(),
        };
        let label = self.cell_label(&scenario_label, variant);
        JobMeta { index, scenario, variant, label, seed }
    }

    /// Materialize the job list in enumeration order.
    pub fn jobs(&self) -> Vec<Job> {
        self.jobs_range(0, self.n_jobs())
    }

    /// Materialize only the jobs with index in `lo..hi` — exactly the
    /// slice `jobs()[lo..hi]`, without building the rest of the grid.
    ///
    /// This is the sharded executor's enumeration primitive: a
    /// million-cell sweep materializes one bounded chunk at a time, so
    /// peak job memory is `O(shard)` instead of `O(grid)`. Scenario
    /// mutations are applied once per scenario block that intersects the
    /// range, so a chunked enumeration performs the same config work as
    /// the monolithic one.
    pub fn jobs_range(&self, lo: usize, hi: usize) -> Vec<Job> {
        assert!(lo <= hi && hi <= self.n_jobs(), "job range {lo}..{hi} out of bounds");
        let n_seeds = self.n_seeds();
        let per_scenario = self.n_variants() * n_seeds;
        let mut jobs = Vec::with_capacity(hi - lo);
        if lo == hi {
            return jobs;
        }
        let first_scenario = lo / per_scenario;
        let last_scenario = (hi - 1) / per_scenario;
        for scenario_idx in first_scenario..=last_scenario {
            let scenario = self.scenarios.get(scenario_idx);
            let mut cfg = self.base.clone();
            if let Some(s) = scenario {
                (s.mutate)(&mut cfg);
            }
            let specs =
                scenario.and_then(|s| s.specs.clone()).unwrap_or_else(|| self.specs.clone());
            let batch_size = scenario.and_then(|s| s.batch_size).unwrap_or(self.batch_size);
            let scenario_label: Arc<str> = match scenario {
                Some(s) => s.label.clone(),
                None => "base".into(),
            };
            for variant_idx in 0..self.n_variants() {
                // This (scenario, variant) block spans a contiguous index
                // run; clip it against the requested range.
                let block_start = scenario_idx * per_scenario + variant_idx * n_seeds;
                let cell_lo = lo.max(block_start);
                let cell_hi = hi.min(block_start + n_seeds);
                if cell_lo >= cell_hi {
                    continue;
                }
                let mut cfg = cfg.clone();
                if let Some((_, pool)) = self.pool_variants.get(variant_idx) {
                    cfg.pool = *pool;
                }
                let label = self.cell_label(&scenario_label, variant_idx);
                for index in cell_lo..cell_hi {
                    let seed = self.seeds[index - block_start];
                    jobs.push(Job {
                        index,
                        scenario: scenario_idx,
                        label: label.clone(),
                        seed,
                        cfg: RunConfig { seed, ..cfg.clone() },
                        specs: specs.clone(),
                        batch_size,
                        population: self.population.clone(),
                    });
                }
            }
        }
        jobs
    }

    /// The seed axis, in declaration order.
    pub fn seed_axis(&self) -> &[u64] {
        &self.seeds
    }

    /// FNV-1a fingerprint of the grid's *shape*: axis sizes, seeds, and
    /// scenario/variant labels. Shard manifests store it so a resume
    /// against a differently shaped (or relabeled) grid is rejected
    /// instead of silently merging incompatible aggregates. Scenario
    /// mutation closures cannot be hashed — a resumed sweep is the
    /// caller's promise that the same code built the grid.
    pub fn shape_fingerprint(&self) -> u64 {
        let mut h = clamshell_obs::Fnv::new();
        for word in [self.n_scenarios() as u64, self.n_variants() as u64, self.n_seeds() as u64] {
            h.write(&word.to_le_bytes());
        }
        for &seed in &self.seeds {
            h.write(&seed.to_le_bytes());
        }
        for s in 0..self.n_scenarios() {
            let label: Arc<str> = match self.scenarios.get(s) {
                Some(s) => s.label.clone(),
                None => "base".into(),
            };
            h.write(label.as_bytes());
            h.write(&[0]); // label separator
        }
        for (label, _) in &self.pool_variants {
            h.write(label.as_bytes());
            h.write(&[0]);
        }
        h.finish()
    }

    /// Run the whole grid, collecting reports in enumeration order.
    /// `threads = None` resolves via [`threads::resolve`]
    /// (`CLAMSHELL_THREADS`, else available parallelism). Skipped cells
    /// (after cancellation) are `None`.
    ///
    /// Grid sweeps execute on the process-wide persistent
    /// [`WorkerPool`](crate::persistent::WorkerPool) — threads spawned by
    /// the first sweep are parked and reused by every later one — and
    /// the merge still happens in job-index order, so reports are
    /// byte-identical to a scoped (or serial) run at any thread count.
    pub fn run(
        &self,
        threads: Option<usize>,
        cancel: &CancelToken,
    ) -> (Vec<Option<RunReport>>, ExecStatus) {
        self.try_run(threads, cancel).unwrap_or_else(|e| panic!("invalid grid: {e}"))
    }

    /// [`Self::run`], failing fast with a [`GridError`] on a structurally
    /// invalid grid instead of panicking.
    pub fn try_run(
        &self,
        threads: Option<usize>,
        cancel: &CancelToken,
    ) -> Result<(Vec<Option<RunReport>>, ExecStatus), GridError> {
        self.validate()?;
        let mut out: Vec<Option<RunReport>> = Vec::with_capacity(self.n_jobs());
        out.resize_with(self.n_jobs(), || None);
        let status = persistent::execute_streaming_pooled(
            persistent::WorkerPool::global(),
            self.jobs(),
            threads::resolve(threads),
            cancel,
            None,
            |_, _, job: Job| job.run(),
            &mut |i, r| out[i] = Some(r),
        );
        Ok((out, status))
    }

    /// Run the whole grid with no cancellation and unwrap the reports
    /// (enumeration order).
    pub fn run_all(&self, threads: Option<usize>) -> Vec<RunReport> {
        self.try_run_all(threads).unwrap_or_else(|e| panic!("invalid grid: {e}"))
    }

    /// [`Self::run_all`], failing fast with a [`GridError`] on a
    /// structurally invalid grid instead of panicking.
    pub fn try_run_all(&self, threads: Option<usize>) -> Result<Vec<RunReport>, GridError> {
        let (reports, status) = self.try_run(threads, &CancelToken::new())?;
        debug_assert!(status.is_complete());
        // clamshell-lint: allow(D006) -- a fresh CancelToken is never cancelled, so every slot is Some
        Ok(reports.into_iter().map(|r| r.expect("uncancelled sweep completes")).collect())
    }

    /// Run the whole grid and group reports by row: `out[r][k]` is the
    /// `r`-th (scenario, variant) row under the `k`-th seed — rows
    /// enumerate scenario-major, variant-mid, so without a variant axis
    /// `r` is simply the scenario index.
    pub fn run_grouped(&self, threads: Option<usize>) -> Vec<Vec<RunReport>> {
        let n_seeds = self.n_seeds();
        let mut grouped: Vec<Vec<RunReport>> =
            Vec::with_capacity(self.n_scenarios() * self.n_variants());
        let mut row: Vec<RunReport> = Vec::with_capacity(n_seeds);
        for report in self.run_all(threads) {
            row.push(report);
            if row.len() == n_seeds {
                grouped.push(std::mem::take(&mut row));
            }
        }
        grouped
    }

    /// Stream the grid through `agg` without buffering reports: each
    /// report is handed to the aggregator in enumeration order as soon
    /// as its prefix is complete, then dropped.
    pub fn run_streaming(&self, threads: Option<usize>, agg: &mut dyn Aggregator) -> ExecStatus {
        self.run_streaming_with(threads, &CancelToken::new(), None, agg)
    }

    /// [`Self::run_streaming`] with explicit cancellation and progress
    /// hooks. On cancellation the aggregator may observe gaps (but never
    /// out-of-order indices).
    pub fn run_streaming_with(
        &self,
        threads: Option<usize>,
        cancel: &CancelToken,
        progress: Option<ProgressFn<'_>>,
        agg: &mut dyn Aggregator,
    ) -> ExecStatus {
        if let Err(e) = self.validate() {
            panic!("invalid grid: {e}");
        }
        persistent::execute_streaming_pooled(
            persistent::WorkerPool::global(),
            self.jobs(),
            threads::resolve(threads),
            cancel,
            progress,
            |_, _, job: Job| job.run(),
            &mut |index, report| agg.consume(&self.meta(index), &report),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(n: usize) -> Vec<TaskSpec> {
        (0..n).map(|i| TaskSpec::new(vec![(i % 2) as u32; 2])).collect()
    }

    fn small_grid() -> Grid {
        Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            specs(4),
            4,
        )
        .seeds(&[10, 20, 30])
        .scenario("sm", |c| c.straggler = Some(Default::default()))
        .scenario("nosm", |c| c.straggler = None)
    }

    #[test]
    fn enumeration_is_scenario_major_seed_minor() {
        let grid = small_grid();
        assert_eq!(grid.n_jobs(), 6);
        let jobs = grid.jobs();
        let got: Vec<(usize, &str, u64)> =
            jobs.iter().map(|j| (j.scenario, &*j.label, j.seed)).collect();
        assert_eq!(
            got,
            vec![
                (0, "sm", 10),
                (0, "sm", 20),
                (0, "sm", 30),
                (1, "nosm", 10),
                (1, "nosm", 20),
                (1, "nosm", 30),
            ]
        );
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i);
            assert_eq!(j.cfg.seed, j.seed);
            let meta = grid.meta(i);
            assert_eq!((meta.scenario, &*meta.label, meta.seed), got[i]);
        }
        // Scenario mutations applied on top of the base.
        assert!(jobs[0].cfg.straggler.is_some());
        assert!(jobs[3].cfg.straggler.is_none());
    }

    #[test]
    fn gridless_base_is_one_implicit_scenario() {
        let grid = Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            specs(4),
            4,
        )
        .seeds(&[7, 8]);
        assert_eq!(grid.n_scenarios(), 1);
        let jobs = grid.jobs();
        assert_eq!(jobs.len(), 2);
        assert_eq!(&*jobs[0].label, "base");
        assert_eq!(&*grid.meta(1).label, "base");
    }

    #[test]
    fn scenario_with_overrides_specs_and_batch() {
        let grid = Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            specs(4),
            4,
        )
        .scenario("default-shape", |_| {})
        .scenario_with("wide", |_| {}, specs(8), 2);
        let jobs = grid.jobs();
        assert_eq!(jobs[0].specs.len(), 4);
        assert_eq!(jobs[0].batch_size, 4);
        assert_eq!(jobs[1].specs.len(), 8);
        assert_eq!(jobs[1].batch_size, 2);
    }

    #[test]
    fn jobs_range_matches_full_enumeration() {
        use clamshell_core::CheckoutStrategy;
        // A grid exercising every axis: 2 scenarios × 2 variants × 3
        // seeds, with a spec/batch override on one scenario.
        let grid = Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            specs(4),
            4,
        )
        .seeds(&[10, 20, 30])
        .scenario("sm", |c| c.straggler = Some(Default::default()))
        .scenario_with("wide", |c| c.straggler = None, specs(8), 2)
        .pool_variant("fifo", PoolConfig::default())
        .pool_variant(
            "lifo",
            PoolConfig { strategy: CheckoutStrategy::Lifo, ..Default::default() },
        );
        let all = grid.jobs();
        assert_eq!(all.len(), 12);
        let key = |j: &Job| {
            (
                j.index,
                j.scenario,
                j.label.to_string(),
                j.seed,
                j.cfg.seed,
                j.cfg.straggler.is_some(),
                j.cfg.pool.strategy,
                j.specs.len(),
                j.batch_size,
            )
        };
        for lo in 0..=all.len() {
            for hi in lo..=all.len() {
                let chunk = grid.jobs_range(lo, hi);
                assert_eq!(chunk.len(), hi - lo, "range {lo}..{hi}");
                for (a, b) in chunk.iter().zip(&all[lo..hi]) {
                    assert_eq!(key(a), key(b), "range {lo}..{hi}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn jobs_range_rejects_out_of_bounds() {
        let grid = small_grid();
        let _ = grid.jobs_range(0, grid.n_jobs() + 1);
    }

    #[test]
    fn shape_fingerprint_tracks_structure() {
        let base = small_grid().shape_fingerprint();
        assert_eq!(small_grid().shape_fingerprint(), base, "deterministic");
        // Different seeds, labels, or axis sizes all change the print.
        assert_ne!(small_grid().seeds(&[10, 20, 31]).shape_fingerprint(), base);
        assert_ne!(small_grid().seeds(&[10, 20]).shape_fingerprint(), base);
        assert_ne!(
            small_grid().pool_variant("fifo", PoolConfig::default()).shape_fingerprint(),
            base
        );
        let relabeled = Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            specs(4),
            4,
        )
        .seeds(&[10, 20, 30])
        .scenario("sm", |c| c.straggler = Some(Default::default()))
        .scenario("other", |c| c.straggler = None);
        assert_ne!(relabeled.shape_fingerprint(), base);
    }

    #[test]
    fn grouped_matches_flat_order() {
        let grid = small_grid();
        let flat = grid.run_all(Some(2));
        let grouped = grid.run_grouped(Some(2));
        assert_eq!(grouped.len(), 2);
        for (s, row) in grouped.iter().enumerate() {
            assert_eq!(row.len(), 3);
            for (k, report) in row.iter().enumerate() {
                assert_eq!(
                    serde_json::to_string(report).unwrap(),
                    serde_json::to_string(&flat[s * 3 + k]).unwrap()
                );
            }
        }
    }

    #[test]
    fn reused_pool_is_byte_identical_across_sweeps() {
        // Grid sweeps run on the process-wide persistent pool; two
        // consecutive sweeps reuse the same parked threads and must
        // produce byte-identical reports — which must in turn match the
        // scoped (spawn-per-sweep) executor on the same job list.
        let grid = small_grid();
        let bytes = |rs: &[RunReport]| {
            rs.iter().map(|r| serde_json::to_string(r).unwrap()).collect::<Vec<_>>()
        };
        let first = grid.run_all(Some(4));
        let second = grid.run_all(Some(4));
        assert_eq!(bytes(&first), bytes(&second));
        let scoped = crate::pool::map(grid.jobs(), 4, |_, _, job: Job| job.run());
        assert_eq!(bytes(&first), bytes(&scoped));
    }

    #[test]
    fn thread_count_does_not_change_reports() {
        let grid = small_grid();
        let one = grid.run_all(Some(1));
        let four = grid.run_all(Some(4));
        assert_eq!(serde_json::to_string(&one).unwrap(), serde_json::to_string(&four).unwrap());
    }

    #[test]
    fn empty_seed_axis_is_a_structured_error() {
        let grid = Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            specs(4),
            4,
        )
        .seeds(&[]);
        assert_eq!(grid.validate(), Err(GridError::EmptySeedAxis));
        assert_eq!(grid.try_run_all(Some(1)).unwrap_err(), GridError::EmptySeedAxis);
        let err = grid.try_run(Some(1), &CancelToken::new()).map(|_| ()).unwrap_err();
        assert_eq!(err.to_string(), "grid has an empty seed axis");
    }

    #[test]
    fn duplicate_scenario_labels_are_a_structured_error() {
        let grid = Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            specs(4),
            4,
        )
        .scenario("sm", |c| c.straggler = Some(Default::default()))
        .scenario("base", |_| {})
        .scenario("sm", |_| {});
        let err = grid.try_run_all(Some(1)).unwrap_err();
        assert_eq!(err, GridError::DuplicateScenario { label: "sm".into() });
        assert!(err.to_string().contains("\"sm\""));
        // Distinct labels validate fine.
        assert_eq!(small_grid().validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "invalid grid")]
    fn panicking_entry_point_fails_fast_before_any_job() {
        let grid = Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            specs(4),
            4,
        )
        .seeds(&[]);
        let _ = grid.run_all(Some(1));
    }

    #[test]
    fn pool_variant_axis_multiplies_and_labels_cells() {
        use clamshell_core::CheckoutStrategy;
        let grid = Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            specs(4),
            4,
        )
        .seeds(&[10, 20])
        .scenario("sm", |c| c.straggler = Some(Default::default()))
        .scenario("nosm", |c| c.straggler = None)
        .pool_variant("fifo", PoolConfig::default())
        .pool_variant(
            "lifo",
            PoolConfig { strategy: CheckoutStrategy::Lifo, ..Default::default() },
        );
        assert_eq!(grid.n_variants(), 2);
        assert_eq!(grid.n_jobs(), 2 * 2 * 2);
        let jobs = grid.jobs();
        let got: Vec<(usize, &str, u64)> =
            jobs.iter().map(|j| (j.scenario, &*j.label, j.seed)).collect();
        assert_eq!(
            got,
            vec![
                (0, "sm/fifo", 10),
                (0, "sm/fifo", 20),
                (0, "sm/lifo", 10),
                (0, "sm/lifo", 20),
                (1, "nosm/fifo", 10),
                (1, "nosm/fifo", 20),
                (1, "nosm/lifo", 10),
                (1, "nosm/lifo", 20),
            ]
        );
        for (i, &expected) in got.iter().enumerate() {
            let meta = grid.meta(i);
            assert_eq!((meta.scenario, &*meta.label, meta.seed), expected);
            assert_eq!(meta.variant, (i / 2) % 2);
        }
        // Variant configs land in the job configs; scenario mutations
        // still apply.
        assert_eq!(jobs[0].cfg.pool.strategy, CheckoutStrategy::Fifo);
        assert_eq!(jobs[2].cfg.pool.strategy, CheckoutStrategy::Lifo);
        assert!(jobs[2].cfg.straggler.is_some());
        assert!(jobs[6].cfg.straggler.is_none());
    }

    #[test]
    fn no_variant_axis_is_the_historical_grid() {
        // Declaring zero variants must reproduce the exact labels,
        // enumeration, and job count of the pre-variant grid.
        let grid = small_grid();
        assert_eq!(grid.n_variants(), 1);
        assert_eq!(grid.n_jobs(), 6);
        for (i, j) in grid.jobs().iter().enumerate() {
            assert!(!j.label.contains('/'), "no variant suffix: {}", j.label);
            assert_eq!(grid.meta(i).variant, 0);
        }
    }

    #[test]
    fn duplicate_variant_labels_are_a_structured_error() {
        let grid = Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            specs(4),
            4,
        )
        .pool_variant("fifo", PoolConfig::default())
        .pool_variant("fifo", PoolConfig::default());
        let err = grid.try_run_all(Some(1)).unwrap_err();
        assert_eq!(err, GridError::DuplicateVariant { label: "fifo".into() });
        assert!(err.to_string().contains("\"fifo\""));
    }

    #[test]
    fn cancellation_mid_sweep_returns_partial() {
        // 1 scenario x 8 seeds: cancelling after the 2nd delivery can
        // leak at most ~2 more jobs past the bounded funnel.
        let grid = Grid::new(
            RunConfig { pool_size: 4, ng: 2, ..Default::default() },
            Population::mturk_live(),
            specs(4),
            4,
        )
        .seeds(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let cancel = CancelToken::new();
        let mut consumed = 0usize;
        struct Counter<'a>(&'a mut usize);
        impl Aggregator for Counter<'_> {
            fn consume(&mut self, _meta: &JobMeta, _report: &RunReport) {
                *self.0 += 1;
            }
        }
        let cancel_ref = &cancel;
        let status = grid.run_streaming_with(
            Some(1),
            &cancel,
            Some(&mut |done, _| {
                if done == 2 {
                    cancel_ref.cancel();
                }
            }),
            &mut Counter(&mut consumed),
        );
        assert!(status.cancelled);
        assert!(status.completed < grid.n_jobs());
        assert_eq!(status.completed, consumed);
    }
}
