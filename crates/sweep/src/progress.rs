//! Cancellation tokens and progress callbacks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shareable cancellation flag.
///
/// Workers check the token before starting each job: a cancelled sweep
/// finishes its in-flight jobs, skips everything still queued, and
/// returns partial results. Cloning is cheap (an `Arc` handle); all
/// clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A progress callback: invoked as `(completed, total)` after each job's
/// result has been delivered (in job-index order) to the consumer.
///
/// The callback runs on the coordinating thread, never on workers, so it
/// may freely mutate captured state — e.g. print a progress bar, or call
/// [`CancelToken::cancel`] to stop the sweep mid-flight.
pub type ProgressFn<'a> = &'a mut dyn FnMut(usize, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }
}
