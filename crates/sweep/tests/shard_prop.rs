//! Property-based checkpoint/resume equivalence: the sharded executor's
//! load-bearing contract, checked over arbitrary `(grid shape, shard
//! size, kill point, thread count)` tuples.
//!
//! For every sampled tuple the same grid is folded three ways —
//!
//! 1. unsharded, serial (`Grid::run_streaming` on one thread): the
//!    reference bits;
//! 2. sharded on `threads` workers, cancelled after `kill_after`
//!    delivered cells (simulating a mid-sweep kill);
//! 3. resumed from the manifest into a **fresh** aggregator
//!    (simulating a new process).
//!
//! The resumed fold's `snapshot_words()` must equal the reference
//! exactly — every f64 bit pattern, across every sampled shape. This is
//! the property the hand-picked cases in `shard.rs` pin pointwise; here
//! the shapes are adversarial: shards that divide the grid evenly,
//! shards larger than the grid, single-cell shards, kills on and off
//! checkpoint boundaries.

use clamshell_core::task::TaskSpec;
use clamshell_core::RunConfig;
use clamshell_sweep::shard::{run_sharded, ShardOptions};
use clamshell_sweep::{CancelToken, Grid, Metric, MetricsAggregator};
use clamshell_trace::Population;
use proptest::prelude::*;
use std::path::PathBuf;

/// A grid with `n_seeds` seeds and `n_scenarios` of the standard
/// adversity scenarios; cells stay small so a case runs in milliseconds.
fn shaped_grid(n_seeds: usize, n_scenarios: usize) -> Grid {
    let specs: Vec<TaskSpec> = (0..4).map(|i| TaskSpec::new(vec![(i % 2) as u32; 2])).collect();
    let seeds: Vec<u64> = (1..=n_seeds as u64).collect();
    let mut g = Grid::new(
        RunConfig { pool_size: 4, ng: 2, ..Default::default() },
        Population::mturk_live(),
        specs,
        4,
    )
    .seeds(&seeds)
    .scenario("sm", |c| c.straggler = Some(Default::default()));
    if n_scenarios >= 2 {
        g = g.scenario("nosm", |c| c.straggler = None);
    }
    if n_scenarios >= 3 {
        g = g.scenario("small", |c| c.pool_size = 2);
    }
    g
}

fn fresh_agg(g: &Grid) -> MetricsAggregator {
    MetricsAggregator::new(g.n_scenarios(), Metric::standard())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded + killed + resumed == unsharded serial, bit for bit.
    #[test]
    fn sharded_resume_is_bit_identical_to_serial(
        n_seeds in 1usize..5,
        n_scenarios in 1usize..4,
        shard_size in 1usize..9,
        kill_raw in 0usize..64,
        threads in 1usize..5,
    ) {
        let g = shaped_grid(n_seeds, n_scenarios);
        let kill_after = 1 + kill_raw % g.n_jobs();
        let path: PathBuf = std::env::temp_dir().join(format!(
            "clamshell_shard_prop_{n_seeds}_{n_scenarios}_{shard_size}_{kill_after}_{threads}.jsonl"
        ));
        let _ = std::fs::remove_file(&path);

        // 1. The unsharded serial reference fold.
        let mut reference = fresh_agg(&g);
        let status = g.run_streaming(Some(1), &mut reference);
        prop_assert!(status.is_complete());
        let reference = reference.snapshot_words();

        // 2. Sharded on `threads` workers, killed mid-sweep.
        let opts = ShardOptions {
            shard_size,
            manifest: path.clone(),
            resume: false,
            threads: Some(threads),
        };
        let cancel = CancelToken::new();
        let cancel_ref = &cancel;
        let mut agg = fresh_agg(&g);
        let out = run_sharded(
            &g,
            &mut agg,
            &opts,
            &cancel,
            Some(&mut |done, _| {
                if done == kill_after {
                    cancel_ref.cancel();
                }
            }),
        )
        .unwrap();

        if out.is_complete() {
            // The kill landed after the final delivery: the sharded
            // fold itself must already match the reference.
            prop_assert_eq!(agg.snapshot_words(), reference);
        } else {
            prop_assert!(out.cancelled);
            // 3. A "new process": fresh aggregator, resume from the
            // manifest, finish the sweep.
            let opts = ShardOptions { resume: true, ..opts };
            let mut resumed = fresh_agg(&g);
            let out2 = run_sharded(&g, &mut resumed, &opts, &CancelToken::new(), None).unwrap();
            prop_assert!(out2.is_complete());
            prop_assert_eq!(out2.resumed_shards, out.shards_completed);
            prop_assert_eq!(resumed.snapshot_words(), reference);
        }
        let _ = std::fs::remove_file(&path);
    }
}
