//! Crowd-powered entity resolution with redundant quality control — the
//! data-cleaning workload (CrowdER-style) that the paper's introduction
//! motivates: "many data cleaning systems rely on crowd workers to
//! provide labels for entity resolution".
//!
//! Each task asks: do these two product records refer to the same entity?
//! Every pair is answered by a 3-vote quorum; straggler mitigation is
//! decoupled from the quorum (§4.1), and Dawid–Skene EM re-estimates
//! worker reliability from the collected votes afterward.
//!
//! ```text
//! cargo run --release --example entity_resolution
//! ```

use clamshell::prelude::*;
use clamshell::quality::em::DawidSkene;

fn main() {
    // 120 candidate record pairs; ~30% are true matches.
    let pairs: Vec<TaskSpec> =
        (0..120).map(|i| TaskSpec::new(vec![u32::from(i % 10 < 3)])).collect();
    let truths: Vec<u32> = pairs.iter().map(|p| p.truths[0]).collect();

    let config = RunConfig {
        pool_size: 12,
        ng: 1,
        n_classes: 2,
        quorum: 3, // redundancy-based quality control
        seed: 11,
        ..Default::default()
    }
    .with_straggler()
    .with_maintenance();

    let mut runner = Runner::new(config, Population::mturk_live());
    runner.warm_up();
    for chunk in pairs.chunks(12) {
        runner.run_batch(chunk.to_vec());
    }

    // Evaluate the majority-vote consensus against ground truth and feed
    // every individual vote into Dawid–Skene.
    let mut em = DawidSkene::new(2);
    let mut correct = 0usize;
    let mut votes_cast = 0usize;
    for (i, task) in runner.tasks().iter().enumerate() {
        let consensus = runner.final_labels(task).unwrap()[0];
        if consensus == truths[i] {
            correct += 1;
        }
        for response in &task.responses {
            em.observe(response.worker.0, i as u32, runner.labels(response.labels)[0]);
            votes_cast += 1;
        }
    }
    let report = runner.finish();

    println!("entity resolution over {} pairs:", truths.len());
    println!(
        "  consensus accuracy : {:.1}% ({} votes cast, quorum 3)",
        100.0 * correct as f64 / truths.len() as f64,
        votes_cast
    );
    println!(
        "  wall-clock         : {:.1}s | mean batch std {:.2}s",
        report.total_secs(),
        report.mean_batch_std()
    );
    println!("  cost               : ${:.2}", report.cost.total_usd());

    // Worker reliability from EM, no gold labels needed.
    let result = em.run(&EmConfig::default());
    let mut workers: Vec<(u32, f64)> =
        result.worker_accuracy.iter().map(|(&w, &a)| (w, a)).collect();
    workers.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("  top workers by estimated accuracy (Dawid–Skene EM):");
    for (w, acc) in workers.iter().take(5) {
        println!("    w{w:<4} {:.1}%", acc * 100.0);
    }
}
