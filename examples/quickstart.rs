//! Quickstart: label a pile of records with the full CLAMShell stack and
//! print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use clamshell::prelude::*;

fn main() {
    // A simulated crowd calibrated to the live-MTurk scale of the paper
    // (§6.1): per-label latencies of a few seconds with a slow tail.
    let population = Population::mturk_live();

    // Full CLAMShell: retainer pool of 15, straggler mitigation, PM8 pool
    // maintenance. `ng = 5` groups five records per task (the paper's
    // "Medium" complexity).
    let config = RunConfig { pool_size: 15, ng: 5, n_classes: 2, seed: 42, ..Default::default() }
        .with_straggler()
        .with_maintenance();

    // 300 binary labeling tasks (1500 records), e.g. "is this review
    // positive?", submitted in pool-sized batches (R = 1).
    let tasks: Vec<TaskSpec> = (0..300).map(|i| TaskSpec::new(vec![(i % 2) as u32; 5])).collect();

    println!("labeling {} records with CLAMShell...", 300 * 5);
    let report = run_batched(config, population, tasks, 15);

    let lat = report.task_latency_summary();
    println!("  labels produced : {}", report.labels_produced());
    println!("  wall-clock      : {:.1}s (simulated)", report.total_secs());
    println!("  throughput      : {:.2} labels/s", report.throughput());
    println!(
        "  task latency    : mean {:.1}s  p50 {:.1}s  p95 {:.1}s  p99 {:.1}s",
        lat.mean, lat.p50, lat.p95, lat.p99
    );
    println!(
        "  batch variance  : {:.2}s mean per-batch std (straggler mitigation at work)",
        report.mean_batch_std()
    );
    println!(
        "  pool churn      : {} workers recruited, {} evicted by maintenance",
        report.workers_recruited, report.workers_evicted
    );
    println!(
        "  cost            : ${:.2} total (${:.2} work, ${:.2} waiting, ${:.2} recruitment)",
        report.cost.total_usd(),
        report.cost.work_micro as f64 / 1e6,
        report.cost.wait_micro as f64 / 1e6,
        report.cost.recruit_micro as f64 / 1e6,
    );
}
