//! Train a classifier with crowd labels three ways — pure active, pure
//! passive, and CLAMShell's hybrid — on an easy and a hard dataset, and
//! watch hybrid track the better of the two (§5.1 / Figure 15).
//!
//! The three strategies are independent runs, so they fan out across
//! the sweep engine's work-stealing pool; results come back in
//! submission order, so the printout is identical at any thread count
//! (set `CLAMSHELL_THREADS` to experiment).
//!
//! ```text
//! cargo run --release --example active_vs_hybrid
//! ```

use clamshell::prelude::*;
use clamshell::sweep::{pool, threads};

fn run(ds: &Dataset, strategy: Strategy, seed: u64) -> LearningOutcome {
    let run_cfg =
        RunConfig { pool_size: 10, ng: 1, n_classes: ds.n_classes, seed, ..Default::default() }
            .with_straggler();
    let learn_cfg = LearningConfig {
        strategy,
        label_budget: 200,
        sgd: SgdConfig { epochs: 15, ..Default::default() },
        seed,
        ..Default::default()
    };
    LearningRunner::new(ds, run_cfg, learn_cfg, Population::mturk_live()).run()
}

fn main() {
    let easy = make_classification(&GenConfig::with_hardness(0), 1);
    let hard = make_classification(&GenConfig::with_hardness(2), 2);

    for (name, ds) in [("easy", &easy), ("hard", &hard)] {
        println!("{name} dataset ({} features):", ds.dims());
        let strategies =
            [Strategy::Active { k: 5 }, Strategy::Passive, Strategy::Hybrid { active_frac: 0.5 }];
        let outcomes = pool::map(strategies.to_vec(), threads::resolve(None), |_, _, strategy| {
            run(ds, strategy, 9)
        });
        for out in outcomes {
            let t80 = out
                .curve
                .time_to_accuracy(0.8)
                .map(|t| format!("{t:.0}s"))
                .unwrap_or_else(|| "never".into());
            println!(
                "  {:<3} final accuracy {:.3} | 80% reached at {:>6} | {} labels in {:.0}s",
                out.strategy,
                out.final_accuracy,
                t80,
                out.labels.len(),
                out.report.total_secs(),
            );
        }
        println!();
    }
    println!("hybrid should track the better strategy on both datasets.");
}
