//! Streaming service mode end to end: an open-loop task stream runs
//! through the real streaming engine (`clamshell::stream`), completed
//! state retires at every batch boundary so memory stays bounded, and
//! each periodic checkpoint prints as a live dashboard row. The closing
//! lines replay the same workload batched and verify the bit-for-bit
//! equivalence contract on the spot.
//!
//! ```text
//! cargo run --release --example streaming_dashboard
//! ```

use clamshell::prelude::*;
use clamshell::stream::{dashboard, source};

fn main() {
    let cfg = RunConfig { pool_size: 12, ng: 1, n_classes: 2, seed: 23, ..Default::default() }
        .with_straggler()
        .with_maintenance();
    let n_tasks = 60;
    let batch_size = 12;

    // Open-loop service knobs: arrivals at 0.05 tasks per simulated
    // second (reporting-only — they never gate admission), a checkpoint
    // every 12 completions, and retirement on, so the engine holds one
    // batch of live state no matter how long the stream runs.
    let knobs = StreamConfig { rate_per_sec: 0.05, checkpoint_every: 12, retire: true };

    // The source is an *unbounded* iterator; the engine admits exactly
    // `n_tasks` from it in deterministic batch-sized chunks.
    let outcome = run_stream(
        cfg.clone(),
        Population::mturk_live(),
        source::alternating(1),
        n_tasks,
        batch_size,
        &knobs,
    );

    println!("streaming dashboard ({n_tasks} tasks, retire-mode):\n");
    print!("{}", dashboard::render(&outcome.checkpoints));
    println!("{}", dashboard::summary(&outcome.checkpoints));
    assert!(outcome.report.tasks.is_empty(), "retired rows live only in the digest");

    // The equivalence witness: a batched run over the same spec prefix
    // folds to the same three digests the stream accumulated while
    // retiring its rows — the streamed service loop is the batch
    // pipeline, bit for bit.
    let specs = source::alternating_specs(1, n_tasks);
    let batched = run_batched(cfg, Population::mturk_live(), specs, batch_size);
    assert_eq!(outcome.digest.values(), StreamDigest::of(&batched).values());
    println!(
        "\nstreamed == batched bit-for-bit: task digest {}, {} labels either way",
        clamshell::obs::fingerprint_hex(outcome.digest.values().0),
        batched.labels_produced(),
    );
}
