//! Streaming labeling through the Batcher (Figure 1's front door): tasks
//! trickle in from a live application; the Batcher forms batches by
//! size-or-timeout so neither throughput nor staleness collapses.
//!
//! ```text
//! cargo run --release --example streaming_dashboard
//! ```

use clamshell::core::batcher::{Batcher, BatcherConfig};
use clamshell::prelude::*;

fn main() {
    let cfg = RunConfig { pool_size: 12, ng: 1, n_classes: 2, seed: 23, ..Default::default() }
        .with_straggler()
        .with_maintenance();

    let mut runner = Runner::new(cfg, Population::mturk_live());
    runner.warm_up();

    let mut batcher = Batcher::new(
        BatcherConfig { batch_size: 12, max_delay: SimDuration::from_secs(20) },
        runner,
    );

    // A bursty arrival pattern: quiet stretches punctuated by bursts, the
    // worst case for naive fixed-size batching (a lone task would wait
    // forever for companions without the timeout trigger).
    let mut dispatched = 0usize;
    for burst in 0..6 {
        let burst_size = [3usize, 14, 1, 12, 5, 9][burst];
        for i in 0..burst_size {
            if let Some(idx) = batcher.submit(TaskSpec::new(vec![(i % 2) as u32])) {
                println!("burst {burst}: size trigger dispatched batch {idx}");
                dispatched += 1;
            }
        }
        // Quiet period between bursts; the timeout trigger may fire.
        if let Some(idx) = batcher.idle(SimDuration::from_secs(45)) {
            println!("burst {burst}: timeout trigger dispatched partial batch {idx}");
            dispatched += 1;
        }
    }

    println!(
        "\nmean arrival->dispatch queueing wait: {:.1}s (bounded by the 20s timeout)",
        batcher.mean_queueing_wait_secs()
    );
    let report = batcher.finish();
    println!(
        "{} tasks labeled across {} batches ({} dispatched by triggers) in {:.0}s, cost ${:.2}",
        report.tasks.len(),
        report.batches.len(),
        dispatched,
        report.total_secs(),
        report.cost.total_usd(),
    );
}
