//! The paper's motivating scenario (Example 1): a news outlet monitors
//! public reaction to a live political debate by having a crowd label
//! tweet sentiment in near-real-time. If crowd latency is high, the
//! sentiment dashboard falls behind the debate and becomes useless.
//!
//! We stream one batch of tweets per "debate minute" and compare the
//! dashboard's staleness with and without CLAMShell's per-batch
//! techniques.
//!
//! ```text
//! cargo run --release --example tweet_sentiment
//! ```

use clamshell::prelude::*;

/// Sentiment classes.
const CLASSES: [&str; 3] = ["positive", "negative", "neutral"];

fn debate_minute_batch(minute: usize, ng: usize) -> Vec<TaskSpec> {
    // Ten tweet-labeling tasks per debate minute; ground truth drifts so
    // the dashboard has something to show.
    (0..10)
        .map(|i| {
            let lean = ((minute + i) % 3) as u32;
            TaskSpec::new(vec![lean; ng])
        })
        .collect()
}

fn run_dashboard(name: &str, config: RunConfig) {
    let mut runner = Runner::new(config, Population::mturk_live());
    runner.warm_up();

    println!("{name}:");
    let mut worst_staleness: f64 = 0.0;
    let mut total_counts = [0usize; 3];
    for minute in 0..8 {
        let batch_start = runner.now();
        let batch = runner.run_batch(debate_minute_batch(minute, 1));
        let staleness = runner.now().since(batch_start).as_secs_f64();
        worst_staleness = worst_staleness.max(staleness);

        // Tally the sentiment the dashboard would display this minute.
        let mut counts = [0usize; 3];
        for task in runner.tasks().iter().filter(|t| t.batch == batch) {
            for &label in runner.final_labels(task).unwrap() {
                counts[label as usize] += 1;
                total_counts[label as usize] += 1;
            }
        }
        println!(
            "  minute {minute}: labels in {staleness:>5.1}s -> {} {} / {} {} / {} {}",
            counts[0], CLASSES[0], counts[1], CLASSES[1], counts[2], CLASSES[2]
        );
    }
    let report = runner.finish();
    println!(
        "  worst batch staleness: {worst_staleness:.1}s | batch-std {:.2}s | cost ${:.2}",
        report.mean_batch_std(),
        report.cost.total_usd()
    );
    println!(
        "  totals: {} positive / {} negative / {} neutral\n",
        total_counts[0], total_counts[1], total_counts[2]
    );
}

fn main() {
    let base = RunConfig { pool_size: 15, ng: 1, n_classes: 3, seed: 7, ..Default::default() };

    // A plain retainer pool: batches block on stragglers, so some debate
    // minutes arrive very late.
    run_dashboard("plain retainer pool", base.clone());

    // CLAMShell's per-batch techniques keep every minute interactive.
    run_dashboard(
        "CLAMShell (straggler mitigation + pool maintenance)",
        base.with_straggler().with_maintenance(),
    );
}
