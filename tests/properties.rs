//! Property-based tests over the whole stack: for arbitrary small
//! configurations, the system's core invariants hold.

use clamshell::prelude::*;
use proptest::prelude::*;
// `clamshell::prelude::Strategy` (the learning enum) collides with the
// proptest trait under glob imports; re-import the trait explicitly.
use proptest::strategy::Strategy as _;

fn arb_config() -> impl proptest::strategy::Strategy<Value = RunConfig> {
    (
        2usize..8,     // pool size
        1u32..4,       // ng
        1u32..3,       // quorum
        any::<bool>(), // straggler mitigation
        any::<bool>(), // maintenance
        0u64..1000,    // seed
    )
        .prop_map(|(pool_size, ng, quorum, sm, pm, seed)| {
            let mut cfg =
                RunConfig { pool_size, ng, n_classes: 2, quorum, seed, ..Default::default() };
            if sm {
                cfg = cfg.with_straggler();
            }
            if pm {
                cfg = cfg.with_maintenance();
            }
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every run completes every task exactly once, with consistent
    /// bookkeeping, for arbitrary configurations.
    #[test]
    fn runs_complete_all_tasks(cfg in arb_config(), n_tasks in 2usize..12) {
        let ng = cfg.ng as usize;
        let specs: Vec<TaskSpec> =
            (0..n_tasks).map(|i| TaskSpec::new(vec![(i % 2) as u32; ng])).collect();
        let batch = cfg.pool_size.min(n_tasks);
        let report = run_batched(cfg.clone(), Population::mturk_live(), specs, batch);

        // All tasks completed, each contributing ng labels.
        prop_assert_eq!(report.tasks.len(), n_tasks);
        prop_assert_eq!(report.labels_produced(), (n_tasks * ng) as u64);

        // Costs are composed of exactly the three ledgers.
        prop_assert_eq!(
            report.cost.total_micro(),
            report.cost.work_micro + report.cost.wait_micro + report.cost.recruit_micro
        );
        prop_assert!(report.cost.work_micro > 0);

        // Completion times sit inside the run window.
        for t in &report.tasks {
            prop_assert!(t.completed >= report.started);
            prop_assert!(t.completed <= report.finished);
            prop_assert!(t.completed >= t.created);
        }

        // Labels-over-time is strictly monotone in count.
        let series = report.labels_over_time();
        prop_assert!(series.windows(2).all(|w| w[0].1 < w[1].1));
        prop_assert_eq!(series.last().map(|x| x.1).unwrap_or(0), (n_tasks * ng) as u64);

        // Without SM, nothing is ever terminated.
        if cfg.straggler.is_none() && cfg.maintenance.is_none() {
            prop_assert_eq!(report.termination_rate(), 0.0);
        }
    }

    /// Same seed, same everything.
    #[test]
    fn determinism_under_arbitrary_configs(cfg in arb_config()) {
        let mk = || {
            let specs: Vec<TaskSpec> =
                (0..6).map(|i| TaskSpec::new(vec![(i % 2) as u32; cfg.ng as usize])).collect();
            run_batched(cfg.clone(), Population::mturk_live(), specs, 3)
        };
        let (a, b) = (mk(), mk());
        prop_assert_eq!(a.total_secs(), b.total_secs());
        prop_assert_eq!(a.cost.total_micro(), b.cost.total_micro());
        prop_assert_eq!(a.workers_recruited, b.workers_recruited);
    }

    /// The §4.2 closed form stays inside its bounds and is monotone for
    /// arbitrary parameters.
    #[test]
    fn pool_model_bounds(q in 0.0f64..1.0, mu_f in 0.1f64..50.0, gap in 0.0f64..100.0, n in 0u32..200) {
        let model = PoolModel::new(q, mu_f, mu_f + gap);
        let v = model.expected_mpl(n);
        prop_assert!(v >= model.limit() - 1e-9);
        prop_assert!(v <= model.expected_mpl(0) + 1e-9);
        prop_assert!(model.expected_mpl(n + 1) <= v + 1e-9);
    }

    /// Majority vote is invariant under vote permutation and never
    /// invents labels.
    #[test]
    fn majority_vote_properties(labels in proptest::collection::vec(0u32..4, 1..12), rot in 0usize..12) {
        use clamshell::quality::voting::Vote;
        let votes: Vec<Vote> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| Vote { worker: i as u32, label: l })
            .collect();
        let winner = majority_vote(&votes).unwrap();
        prop_assert!(labels.contains(&winner));

        // A strict-majority label always wins, under any rotation.
        let mut counts = [0usize; 4];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        let rotated: Vec<Vote> = {
            let k = rot % votes.len();
            votes[k..].iter().chain(&votes[..k]).copied().collect()
        };
        if let Some((best, &c)) = counts.iter().enumerate().max_by_key(|(_, &c)| c) {
            if 2 * c > labels.len() {
                prop_assert_eq!(winner, best as u32);
                prop_assert_eq!(majority_vote(&rotated), Some(best as u32));
            }
        }
    }

    /// Worker latency sampling respects the profile floor and scales with
    /// task size.
    #[test]
    fn worker_sampling_respects_floor(
        mean in 1.0f64..20.0,
        std in 0.0f64..30.0,
        ng in 1u32..12,
        seed in 0u64..500,
    ) {
        let profile = WorkerProfile::fixed(mean, std, 0.9);
        let mut rng = clamshell::sim::rng::Rng::new(seed);
        for _ in 0..50 {
            let secs = profile.sample_task_secs(ng, &mut rng);
            prop_assert!(secs >= profile.min_label_secs * ng as f64);
            prop_assert!(secs.is_finite());
        }
    }

    /// The two-list event queue pops in exactly the same order as a
    /// reference `BinaryHeap` model (min by `(time, seq)` — i.e. earliest
    /// time, FIFO within a timestamp) under random interleaved
    /// schedule/pop sequences.
    #[test]
    fn event_queue_matches_binary_heap_model(
        ops in proptest::collection::vec((0u64..64, 0u32..4), 4..300),
    ) {
        use clamshell::sim::{EventQueue, SimTime};
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut queue: EventQueue<u64> = EventQueue::new();
        // Model: Reverse<(time, seq, payload)> — tuple order is exactly
        // the documented contract, and payload never breaks ties because
        // (time, seq) is unique.
        let mut model: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
        let mut drained = 0usize;
        for (seq, &(delta, pops)) in ops.iter().enumerate() {
            let seq = seq as u64;
            let at = queue.now().as_millis() + delta;
            queue.schedule(SimTime::from_millis(at), seq);
            model.push(Reverse((at, seq, seq)));
            for _ in 0..pops {
                let got = queue.pop();
                let want = model.pop().map(|Reverse((t, _, p))| (SimTime::from_millis(t), p));
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
                drained += 1;
            }
        }
        // Drain the rest; the full order must agree.
        loop {
            let got = queue.pop();
            let want = model.pop().map(|Reverse((t, _, p))| (SimTime::from_millis(t), p));
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
            drained += 1;
        }
        prop_assert_eq!(drained, ops.len());
    }

    /// Dataset generation always produces valid, balanced-ish datasets.
    #[test]
    fn generated_datasets_valid(
        n in 20usize..200,
        d in 4usize..30,
        sep in 0.2f64..3.0,
        seed in 0u64..100,
    ) {
        let cfg = GenConfig {
            n_samples: n,
            n_features: d.max(6),
            n_informative: 3,
            n_redundant: 2,
            class_sep: sep,
            flip_y: 0.05,
            ..Default::default()
        };
        let ds = make_classification(&cfg, seed);
        ds.validate();
        prop_assert_eq!(ds.len(), n);
        let counts = ds.class_counts();
        // Round-robin construction keeps classes within one of each other
        // before flips; flips can move a few.
        prop_assert!(counts.iter().all(|&c| c > 0));
    }
}
