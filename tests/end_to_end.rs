//! Cross-crate integration tests: the paper's main claims, end to end.

use clamshell::prelude::*;

fn binary_specs(n: usize, ng: usize) -> Vec<TaskSpec> {
    (0..n).map(|i| TaskSpec::new(vec![(i % 2) as u32; ng])).collect()
}

fn mean<T, F: Fn(&T) -> f64>(xs: &[T], f: F) -> f64 {
    xs.iter().map(f).sum::<f64>() / xs.len() as f64
}

/// §6.3: straggler mitigation cuts per-batch latency variance by a large
/// factor (paper: 5–10×; we require ≥ 2.5× averaged over seeds).
#[test]
fn straggler_mitigation_cuts_batch_variance() {
    let pop = Population::mturk_live();
    let run = |sm: bool, seed: u64| {
        let mut cfg = RunConfig { pool_size: 15, ng: 5, seed, ..Default::default() };
        if sm {
            cfg = cfg.with_straggler();
        }
        run_batched(cfg, pop.clone(), binary_specs(150, 5), 15)
    };
    let sm: Vec<RunReport> = (1..=4).map(|s| run(true, s)).collect();
    let no: Vec<RunReport> = (1..=4).map(|s| run(false, s)).collect();
    let (std_sm, std_no) = (mean(&sm, |r| r.mean_batch_std()), mean(&no, |r| r.mean_batch_std()));
    assert!(
        std_no > 2.0 * std_sm,
        "expected a large variance cut: SM={std_sm:.2}s NoSM={std_no:.2}s"
    );
    // And it speeds batches up too.
    let (lat_sm, lat_no) = (mean(&sm, |r| r.total_secs()), mean(&no, |r| r.total_secs()));
    assert!(lat_no > 1.5 * lat_sm, "SM={lat_sm:.1}s NoSM={lat_no:.1}s");
}

/// §6.2: maintenance speeds up complex tasks more than simple ones and
/// pushes the pool toward its fast subpopulation.
#[test]
fn maintenance_helps_and_helps_complex_tasks_more() {
    let pop = Population::mturk_live();
    let run = |pm: bool, ng: u32, seed: u64| {
        let mut cfg = RunConfig { pool_size: 15, ng, seed, ..Default::default() };
        if pm {
            cfg = cfg.with_maintenance();
        }
        let specs = binary_specs(240, ng as usize);
        run_batched(cfg, pop.clone(), specs, 15)
    };
    let seeds: Vec<u64> = (1..=3).collect();
    let speedup = |ng: u32| {
        let pm: Vec<RunReport> = seeds.iter().map(|&s| run(true, ng, s)).collect();
        let no: Vec<RunReport> = seeds.iter().map(|&s| run(false, ng, s)).collect();
        mean(&no, |r| r.total_secs()) / mean(&pm, |r| r.total_secs())
    };
    let complex = speedup(10);
    assert!(complex > 1.1, "maintenance should speed up complex tasks: {complex:.2}x");
}

/// §4.2: the maintained pool's true mean latency converges toward `μ_f`.
#[test]
fn maintained_pool_converges_toward_fast_mean() {
    let mut pop = Population::bimodal(0.6, 3.0, 12.0);
    // Fast recruitment so replacement isn't reserve-throttled.
    pop.recruitment = clamshell::sim::dist::LogNormal::from_median_quantile(5.0, 0.9, 12.0);
    pop.recruitment_floor = 1.0;
    let threshold = 7.5;
    let mcfg = MaintenanceConfig {
        threshold_per_label_secs: threshold,
        min_tasks: 1,
        alpha: 0.2,
        reserve_target: 8,
        ..MaintenanceConfig::pm8()
    };
    let cfg = RunConfig {
        pool_size: 15,
        ng: 1,
        maintenance: Some(mcfg),
        churn: false,
        seed: 5,
        ..Default::default()
    };
    let mut runner = Runner::new(cfg, pop.clone());
    runner.warm_up();
    let initial = runner.pool_true_mpl();
    for _ in 0..30 {
        runner.run_batch(binary_specs(15, 1));
    }
    let final_mpl = runner.pool_true_mpl();
    let q = 1.0 - pop.frac_below(threshold);
    let mut rng = clamshell::sim::rng::Rng::new(1);
    let (mu_f, _) = pop.conditional_means(threshold, 20_000, &mut rng);
    let model = PoolModel::new(q, mu_f, 12.0);
    // The pool must close most of the gap to mu_f.
    assert!(
        final_mpl < initial - 0.6 * (initial - model.limit()),
        "initial={initial:.2} final={final_mpl:.2} limit={:.2}",
        model.limit()
    );
}

/// §6.6 headline: CLAMShell beats the open market by a wide margin in
/// throughput and variance (paper: 7.24× / 151×; we require ≥ 3× / ≥ 10×).
#[test]
fn headline_throughput_and_variance() {
    let mut speedups = Vec::new();
    let mut var_cuts = Vec::new();
    for seed in 1..=3 {
        let (clam, nr) = headline_raw_labeling(Population::mturk_live(), 300, 15, seed);
        speedups.push(clam.throughput() / nr.throughput());
        var_cuts.push(nr.batches[0].task_latency_std / clam.mean_batch_std().max(1e-9));
    }
    let speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let var_cut = var_cuts.iter().sum::<f64>() / var_cuts.len() as f64;
    assert!(speedup > 3.0, "throughput speedup {speedup:.2}x");
    assert!(var_cut > 10.0, "variance reduction {var_cut:.1}x");
}

/// §6.5: hybrid learning tracks the better of AL and PL on an easy and a
/// hard dataset.
#[test]
fn hybrid_tracks_the_better_strategy() {
    let run = |ds: &Dataset, strategy: Strategy, seed: u64| {
        let run_cfg =
            RunConfig { pool_size: 10, ng: 1, n_classes: ds.n_classes, seed, ..Default::default() }
                .with_straggler();
        let learn_cfg = LearningConfig {
            strategy,
            label_budget: 120,
            sgd: SgdConfig { epochs: 12, ..Default::default() },
            seed,
            ..Default::default()
        };
        LearningRunner::new(ds, run_cfg, learn_cfg, Population::mturk_live()).run().final_accuracy
    };
    for hardness in [0u32, 2] {
        let ds = make_classification(&GenConfig::with_hardness(hardness), 77 + hardness as u64);
        let mut al = 0.0;
        let mut pl = 0.0;
        let mut hl = 0.0;
        for seed in 1..=3u64 {
            al += run(&ds, Strategy::Active { k: 5 }, seed);
            pl += run(&ds, Strategy::Passive, seed);
            hl += run(&ds, Strategy::Hybrid { active_frac: 0.5 }, seed);
        }
        // Sums over 3 seeds; allow ~0.04/seed of noise around the floor.
        assert!(
            hl >= al.min(pl) - 0.12,
            "hardness {hardness}: HL {hl:.3} vs AL {al:.3} / PL {pl:.3} (sums over 3 seeds)"
        );
    }
}

/// Quality control: a 3-vote quorum beats single answers on a noisy pool,
/// and stays compatible with straggler mitigation (§4.1).
#[test]
fn quorum_improves_label_quality_under_mitigation() {
    let pop = Population::mturk_live();
    let truths: Vec<u32> = (0..120).map(|i| (i % 2) as u32).collect();
    let accuracy_with_quorum = |quorum: u32, seed: u64| {
        let cfg =
            RunConfig { pool_size: 12, ng: 1, quorum, seed, ..Default::default() }.with_straggler();
        let specs: Vec<TaskSpec> = truths.iter().map(|&t| TaskSpec::new(vec![t])).collect();
        let report_runner = {
            let mut r = Runner::new(cfg, pop.clone());
            r.warm_up();
            for chunk in specs.chunks(12) {
                r.run_batch(chunk.to_vec());
            }
            r
        };
        let correct = report_runner
            .tasks()
            .iter()
            .enumerate()
            .filter(|(i, t)| report_runner.final_labels(t).unwrap()[0] == truths[*i])
            .count();
        correct as f64 / truths.len() as f64
    };
    let mut single = 0.0;
    let mut voted = 0.0;
    for seed in 1..=3 {
        single += accuracy_with_quorum(1, seed);
        voted += accuracy_with_quorum(3, seed);
    }
    assert!(
        voted > single,
        "3-vote quorum should beat single answers: voted={voted:.3} single={single:.3} (sums)"
    );
}

/// §4.2 "Extensions": quality-objective maintenance evicts inaccurate
/// workers that speed-only maintenance would keep.
#[test]
fn quality_maintenance_evicts_inaccurate_workers() {
    // A population where inaccurate workers are common enough to matter.
    let mut pop = Population::mturk_live();
    pop.accuracy = clamshell::sim::dist::Beta::new(4.0, 2.0); // mean ~0.67
    pop.min_accuracy = 0.4;
    let mk = |objective, seed| {
        let cfg = RunConfig {
            pool_size: 9,
            ng: 1,
            quorum: 3,
            maintenance: Some(MaintenanceConfig {
                objective,
                min_tasks: 3,
                ..MaintenanceConfig::pm8()
            }),
            seed,
            ..Default::default()
        };
        let specs: Vec<TaskSpec> = (0..90).map(|i| TaskSpec::new(vec![(i % 2) as u32])).collect();
        run_batched(cfg, pop.clone(), specs, 3)
    };
    let mut q_evicted = 0u64;
    let mut s_evicted = 0u64;
    for seed in 1..=3 {
        q_evicted += mk(MaintenanceObjective::Quality { min_agreement: 0.8 }, seed).workers_evicted;
        s_evicted += mk(MaintenanceObjective::Speed, seed).workers_evicted;
    }
    assert!(q_evicted > 0, "quality maintenance should evict inaccurate workers (got {q_evicted})");
    let _ = s_evicted; // speed maintenance may or may not evict here
}

/// The full prelude-level quickstart pathway stays wired together.
#[test]
fn prelude_quickstart_pathway() {
    let cfg = RunConfig { pool_size: 6, ng: 2, seed: 3, ..Default::default() }
        .with_straggler()
        .with_maintenance();
    let report = run_batched(cfg, Population::mturk_live(), binary_specs(12, 2), 6);
    assert_eq!(report.labels_produced(), 24);
    assert!(report.cost.total_usd() > 0.0);
    assert_eq!(report.batches.len(), 2);
}
