//! Proptest state machine for the retainer pool: arbitrary operation
//! sequences applied in lockstep to [`RetainerPool`] and to a naive
//! reference model (unsorted `Vec`, linear scans, obviously-correct
//! bookkeeping). Every observable — membership, states, wait owed at
//! leave, staleness, and the checkout order under both strategies —
//! must agree after every step.

use clamshell::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;
// `clamshell::prelude::Strategy` (the learning enum) collides with the
// proptest trait under glob imports; re-import the trait explicitly.
use proptest::strategy::Strategy as _;

const CAPACITY: usize = 4;
const IDS: u32 = 6;

#[derive(Debug, Clone, Copy)]
enum Op {
    Join(u32),
    Leave(u32),
    Start(u32),
    Finish(u32, bool),
    Bump,
    Advance(u64),
}

fn arb_op() -> impl proptest::strategy::Strategy<Value = Op> {
    // The vendored proptest has no `prop_oneof`; a selector tuple keeps
    // the distribution explicit and fully shrinkable.
    (0u32..6, 0..IDS, any::<bool>(), 1u64..120).prop_map(|(sel, id, completed, dt)| match sel {
        0 => Op::Join(id),
        1 => Op::Leave(id),
        2 => Op::Start(id),
        3 => Op::Finish(id, completed),
        4 => Op::Bump,
        _ => Op::Advance(dt),
    })
}

/// The naive model: push-order `Vec`, linear scans, no cleverness.
#[derive(Debug, Clone)]
struct RefMember {
    id: WorkerId,
    waiting_since: Option<SimTime>,
    working_since: Option<SimTime>,
    generation: u64,
    started: u32,
    completed: u32,
}

#[derive(Debug, Clone)]
struct RefPool {
    generation: u64,
    members: Vec<RefMember>,
}

impl RefPool {
    fn new() -> Self {
        RefPool { generation: 0, members: Vec::new() }
    }

    fn find(&self, w: WorkerId) -> Option<&RefMember> {
        self.members.iter().find(|m| m.id == w)
    }

    fn join(&mut self, w: WorkerId, now: SimTime) -> bool {
        if self.members.len() >= CAPACITY || self.find(w).is_some() {
            return false;
        }
        self.members.push(RefMember {
            id: w,
            waiting_since: Some(now),
            working_since: None,
            generation: self.generation,
            started: 0,
            completed: 0,
        });
        true
    }

    fn leave(&mut self, w: WorkerId, now: SimTime) -> Option<SimDuration> {
        let idx = self.members.iter().position(|m| m.id == w)?;
        let m = self.members.remove(idx);
        Some(match m.waiting_since {
            Some(since) => now.since(since),
            None => SimDuration::ZERO,
        })
    }

    fn is_waiting(&self, w: WorkerId) -> bool {
        self.find(w).is_some_and(|m| m.waiting_since.is_some())
    }

    fn is_working(&self, w: WorkerId) -> bool {
        self.find(w).is_some_and(|m| m.working_since.is_some())
    }

    fn start(&mut self, w: WorkerId, now: SimTime) -> SimDuration {
        let m = self.members.iter_mut().find(|m| m.id == w).unwrap();
        let since = m.waiting_since.take().unwrap();
        m.working_since = Some(now);
        m.started += 1;
        now.since(since)
    }

    fn finish(&mut self, w: WorkerId, now: SimTime, completed: bool) -> SimDuration {
        let m = self.members.iter_mut().find(|m| m.id == w).unwrap();
        let since = m.working_since.take().unwrap();
        m.waiting_since = Some(now);
        if completed {
            m.completed += 1;
        }
        now.since(since)
    }

    fn waiting_ids(&self) -> Vec<WorkerId> {
        let mut ids: Vec<WorkerId> =
            self.members.iter().filter(|m| m.waiting_since.is_some()).map(|m| m.id).collect();
        ids.sort_unstable();
        ids
    }

    fn working_ids(&self) -> Vec<WorkerId> {
        let mut ids: Vec<WorkerId> =
            self.members.iter().filter(|m| m.working_since.is_some()).map(|m| m.id).collect();
        ids.sort_unstable();
        ids
    }

    /// LIFO checkout order: most recently idle first, ties toward the
    /// higher id; non-waiting candidates sink to the end as `ZERO`.
    fn lifo_order(&self, candidates: &[WorkerId]) -> Vec<WorkerId> {
        let since =
            |w: WorkerId| self.find(w).and_then(|m| m.waiting_since).unwrap_or(SimTime::ZERO);
        let mut out = candidates.to_vec();
        out.sort_by_key(|&w| std::cmp::Reverse((since(w), w)));
        out
    }
}

fn check_agreement(pool: &RetainerPool, lifo_pool: &RetainerPool, model: &RefPool) {
    assert_eq!(pool.len(), model.members.len());
    assert_eq!(pool.waiting(), model.waiting_ids());
    assert_eq!(pool.working(), model.working_ids());
    for id in 0..IDS {
        let w = WorkerId(id);
        assert_eq!(pool.contains(w), model.find(w).is_some());
        assert_eq!(
            pool.is_stale(w),
            model.find(w).is_some_and(|m| m.generation < model.generation),
            "staleness of {w} disagrees"
        );
        if let Some(rm) = model.find(w) {
            let m = pool.member(w).unwrap();
            assert_eq!(m.started, rm.started);
            assert_eq!(m.completed, rm.completed);
            assert_eq!(m.generation, rm.generation);
            match m.state {
                MemberState::Waiting { since } => assert_eq!(Some(since), rm.waiting_since),
                MemberState::Working { since } => assert_eq!(Some(since), rm.working_since),
            }
        }
    }
    // Checkout ordering: FIFO preserves id order; LIFO matches the
    // reference sort. Both pools hold identical membership by
    // construction, so the waiting set is shared.
    let waiting = model.waiting_ids();
    let mut fifo_out = waiting.clone();
    pool.order_checkouts(&mut fifo_out);
    assert_eq!(fifo_out, waiting, "FIFO must be the identity on id order");
    let mut lifo_out = waiting.clone();
    lifo_pool.order_checkouts(&mut lifo_out);
    assert_eq!(lifo_out, model.lifo_order(&waiting), "LIFO order disagrees");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The real pool and the naive model agree on every observable after
    /// every operation, for arbitrary op sequences.
    #[test]
    fn pool_matches_reference_model(ops in vec(arb_op(), 1..60)) {
        let mut pool = RetainerPool::new(CAPACITY);
        let mut lifo_pool = RetainerPool::with_config(
            CAPACITY,
            PoolConfig { strategy: CheckoutStrategy::Lifo, ..PoolConfig::default() },
        );
        let mut model = RefPool::new();
        let mut now = SimTime::ZERO;
        for op in ops {
            match op {
                Op::Join(id) => {
                    let w = WorkerId(id);
                    let a = pool.join(w, now);
                    let b = lifo_pool.join(w, now);
                    let r = model.join(w, now);
                    prop_assert_eq!(a, r);
                    prop_assert_eq!(b, r);
                }
                Op::Leave(id) => {
                    let w = WorkerId(id);
                    let a = pool.leave(w, now);
                    let b = lifo_pool.leave(w, now);
                    let r = model.leave(w, now);
                    prop_assert_eq!(a, r);
                    prop_assert_eq!(b, r);
                }
                Op::Start(id) => {
                    // Guard on the *model*: starting a non-waiting worker
                    // is a scheduler bug and panics by contract.
                    let w = WorkerId(id);
                    if model.is_waiting(w) {
                        let a = pool.start_work(w, now);
                        let b = lifo_pool.start_work(w, now);
                        let r = model.start(w, now);
                        prop_assert_eq!(a, r);
                        prop_assert_eq!(b, r);
                    }
                }
                Op::Finish(id, completed) => {
                    let w = WorkerId(id);
                    if model.is_working(w) {
                        let a = pool.finish_work(w, now, completed);
                        let b = lifo_pool.finish_work(w, now, completed);
                        let r = model.finish(w, now, completed);
                        prop_assert_eq!(a, r);
                        prop_assert_eq!(b, r);
                    }
                }
                Op::Bump => {
                    pool.bump_generation();
                    lifo_pool.bump_generation();
                    model.generation += 1;
                }
                Op::Advance(secs) => {
                    now += SimDuration::from_secs(secs);
                }
            }
            check_agreement(&pool, &lifo_pool, &model);
        }
    }
}
