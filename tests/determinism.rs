//! Reproducibility: the whole stack is a pure function of its seed.

use clamshell::prelude::*;

fn specs(n: usize) -> Vec<TaskSpec> {
    (0..n).map(|i| TaskSpec::new(vec![(i % 2) as u32; 5])).collect()
}

fn fingerprint(report: &RunReport) -> String {
    // Stable fingerprint of everything observable.
    format!(
        "{}|{}|{}|{}|{:?}",
        report.total_secs(),
        report.cost.total_micro(),
        report.workers_recruited,
        report.workers_evicted,
        report
            .tasks
            .iter()
            .map(|t| (t.task, t.completed.as_millis(), t.winner.0))
            .collect::<Vec<_>>(),
    )
}

#[test]
fn batch_runs_are_bit_deterministic() {
    let run = || {
        let cfg = RunConfig { pool_size: 10, ng: 5, seed: 99, ..Default::default() }
            .with_straggler()
            .with_maintenance();
        run_batched(cfg, Population::mturk_live(), specs(40), 10)
    };
    assert_eq!(fingerprint(&run()), fingerprint(&run()));
}

#[test]
fn different_seeds_diverge() {
    let run = |seed| {
        let cfg = RunConfig { pool_size: 10, ng: 5, seed, ..Default::default() };
        run_batched(cfg, Population::mturk_live(), specs(20), 10)
    };
    assert_ne!(fingerprint(&run(1)), fingerprint(&run(2)));
}

#[test]
fn open_market_is_deterministic() {
    let run = || {
        run_open_market(
            Population::mturk_live(),
            PlatformConfig::default(),
            specs(30),
            OpenMarketConfig::default(),
            7,
        )
    };
    assert_eq!(fingerprint(&run()), fingerprint(&run()));
}

#[test]
fn learning_runs_are_deterministic() {
    let ds = make_classification(&GenConfig::default(), 5);
    let run = || {
        let run_cfg = RunConfig { pool_size: 8, ng: 1, seed: 11, ..Default::default() };
        let learn_cfg = LearningConfig {
            strategy: Strategy::Hybrid { active_frac: 0.5 },
            label_budget: 60,
            sgd: SgdConfig { epochs: 8, ..Default::default() },
            seed: 11,
            ..Default::default()
        };
        LearningRunner::new(&ds, run_cfg, learn_cfg, Population::mturk_live()).run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.final_accuracy, b.final_accuracy);
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.curve.points.len(), b.curve.points.len());
    for (pa, pb) in a.curve.points.iter().zip(&b.curve.points) {
        assert_eq!(pa.time_secs, pb.time_secs);
        assert_eq!(pa.test_accuracy, pb.test_accuracy);
    }
}

#[test]
fn sweeps_are_thread_count_invariant() {
    // The engine's determinism contract: a sweep run with 1 thread and
    // with 4 threads yields byte-identical serialized reports and
    // byte-identical aggregate tables, because results are merged in
    // job-index order regardless of scheduling.
    let grid = || {
        Grid::new(
            RunConfig { pool_size: 8, ng: 5, ..Default::default() },
            Population::mturk_live(),
            specs(24),
            8,
        )
        .seeds(&[1, 2, 3, 4])
        .scenario("sm+pm", |c| {
            c.straggler = Some(Default::default());
            c.maintenance = Some(MaintenanceConfig::pm8());
        })
        .scenario("sm", |c| c.straggler = Some(Default::default()))
        .scenario("baseline", |_| {})
    };

    // Serialized reports, byte for byte.
    let one = grid().run_all(Some(1));
    let four = grid().run_all(Some(4));
    assert_eq!(one.len(), 12);
    let bytes = |reports: &[RunReport]| {
        reports.iter().map(|r| serde_json::to_string(r).unwrap()).collect::<Vec<_>>()
    };
    assert_eq!(bytes(&one), bytes(&four));

    // Aggregate tables, byte for byte.
    let table = |threads: usize| {
        let g = grid();
        let mut agg = MetricsAggregator::new(g.n_scenarios(), Metric::standard());
        let status = g.run_streaming(Some(threads), &mut agg);
        assert!(status.is_complete());
        let mut out = String::new();
        for s in 0..g.n_scenarios() {
            for m in agg.metrics().to_vec() {
                let cell = agg.stats(s, m.name);
                out.push_str(&format!(
                    "{s} {} n={} mean={:?} var={:?}\n",
                    m.name,
                    cell.count(),
                    cell.mean(),
                    cell.variance()
                ));
            }
        }
        out
    };
    assert_eq!(table(1), table(4));
}

#[test]
fn dataset_generators_are_deterministic() {
    assert_eq!(
        make_classification(&GenConfig::default(), 42),
        make_classification(&GenConfig::default(), 42)
    );
    let d1 = digits(&DigitsConfig { n_samples: 30, ..Default::default() }, 1);
    let d2 = digits(&DigitsConfig { n_samples: 30, ..Default::default() }, 1);
    assert_eq!(d1, d2);
    let o1 = objects(&ObjectsConfig { n_samples: 10, ..Default::default() }, 2);
    let o2 = objects(&ObjectsConfig { n_samples: 10, ..Default::default() }, 2);
    assert_eq!(o1, o2);
}
